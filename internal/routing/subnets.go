package routing

import (
	"encoding/binary"
	"net/netip"
)

// Rng is the draw interface RandomHostAddr consumes. Callers pass a
// generator derived from the causal identity of the choice (in this
// codebase, detrand.Rand keyed on seed and ASN) rather than a shared
// sequential stream, so host selection is independent of call order.
type Rng interface {
	Intn(n int) int
	Int63n(n int64) int64
}

// SubnetBits are the subdivision sizes the paper uses when generating
// spoofed sources: /24 for IPv4 and /64 for IPv6 (§3.2).
const (
	V4SubnetBits = 24
	V6SubnetBits = 64
)

// SubnetOf returns the enclosing /24 (IPv4) or /64 (IPv6) of addr.
//
//doors:hotpath
func SubnetOf(addr netip.Addr) netip.Prefix {
	bits := V6SubnetBits
	if addr.Is4() {
		bits = V4SubnetBits
	}
	p, _ := addr.Prefix(bits)
	return p
}

// EnumerateSubnets splits prefix into its /24s (IPv4) or /64s (IPv6) and
// returns up to max of them, in address order. A prefix smaller than the
// subnet size yields its single enclosing subnet.
func EnumerateSubnets(prefix netip.Prefix, max int) []netip.Prefix {
	subnetBits := V6SubnetBits
	if prefix.Addr().Is4() {
		subnetBits = V4SubnetBits
	}
	if prefix.Bits() >= subnetBits {
		p, _ := prefix.Addr().Prefix(subnetBits)
		return []netip.Prefix{p}
	}
	count := 1 << (subnetBits - prefix.Bits())
	if max > 0 && count > max {
		count = max
	}
	out := make([]netip.Prefix, 0, count)
	cur := prefix.Masked().Addr()
	for i := 0; i < count; i++ {
		p, _ := cur.Prefix(subnetBits)
		out = append(out, p)
		cur = nextSubnet(cur, subnetBits)
		if !cur.IsValid() {
			break
		}
	}
	return out
}

// nextSubnet advances addr by one subnet of the given prefix length.
func nextSubnet(addr netip.Addr, bits int) netip.Addr {
	if addr.Is4() {
		a := addr.As4()
		v := binary.BigEndian.Uint32(a[:])
		v += 1 << (32 - bits)
		binary.BigEndian.PutUint32(a[:], v)
		return netip.AddrFrom4(a)
	}
	a := addr.As16()
	hi := binary.BigEndian.Uint64(a[0:8])
	hi += 1 << (64 - bits) // bits <= 64 for our /64 subdivision
	binary.BigEndian.PutUint64(a[0:8], hi)
	return netip.AddrFrom16(a)
}

// AddrAt returns the host address at the given offset within subnet.
func AddrAt(subnet netip.Prefix, offset uint64) netip.Addr {
	base := subnet.Masked().Addr()
	if base.Is4() {
		a := base.As4()
		v := binary.BigEndian.Uint32(a[:]) + uint32(offset)
		binary.BigEndian.PutUint32(a[:], v)
		return netip.AddrFrom4(a)
	}
	a := base.As16()
	lo := binary.BigEndian.Uint64(a[8:16]) + offset
	binary.BigEndian.PutUint64(a[8:16], lo)
	return netip.AddrFrom16(a)
}

// RandomHostAddr picks a usable host address within subnet using rng,
// following the paper's selection rules (§3.2): in an IPv4 /24 the first
// and last addresses are excluded (reserved network/broadcast); in an
// IPv6 /64 selection is limited to offsets 2..99 (the first two are often
// router addresses).
func RandomHostAddr(subnet netip.Prefix, rng Rng) netip.Addr {
	if subnet.Addr().Is4() {
		hostBits := 32 - subnet.Bits()
		size := uint64(1) << hostBits
		if size <= 2 {
			return subnet.Addr()
		}
		off := 1 + uint64(rng.Int63n(int64(size-2)))
		return AddrAt(subnet, off)
	}
	off := 2 + uint64(rng.Intn(98))
	return AddrAt(subnet, off)
}

// Offset reports addr's offset within its enclosing subnet.
func Offset(addr netip.Addr) uint64 {
	if addr.Is4() {
		a := addr.As4()
		return uint64(binary.BigEndian.Uint32(a[:]) & ((1 << (32 - V4SubnetBits)) - 1))
	}
	a := addr.As16()
	return binary.BigEndian.Uint64(a[8:16])
}
