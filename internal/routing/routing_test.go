package routing

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func mustAddr(s string) netip.Addr     { return netip.MustParseAddr(s) }

func TestTrieLongestMatch(t *testing.T) {
	var tr Trie
	tr.Insert(mustPrefix("10.0.0.0/8"), 100)
	tr.Insert(mustPrefix("10.1.0.0/16"), 200)
	tr.Insert(mustPrefix("10.1.2.0/24"), 300)

	cases := []struct {
		addr string
		want ASN
	}{
		{"10.9.9.9", 100},
		{"10.1.9.9", 200},
		{"10.1.2.9", 300},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(mustAddr(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %v,%v want %v", c.addr, got, ok, c.want)
		}
	}
	if _, ok := tr.Lookup(mustAddr("11.0.0.1")); ok {
		t.Error("unrouted v4 address matched")
	}
}

func TestTrieV6(t *testing.T) {
	var tr Trie
	tr.Insert(mustPrefix("2001:db8::/32"), 64500)
	tr.Insert(mustPrefix("2001:db8:1::/48"), 64501)
	if got, ok := tr.Lookup(mustAddr("2001:db8:1::5")); !ok || got != 64501 {
		t.Fatalf("v6 longest match = %v,%v", got, ok)
	}
	if got, ok := tr.Lookup(mustAddr("2001:db8:2::5")); !ok || got != 64500 {
		t.Fatalf("v6 covering match = %v,%v", got, ok)
	}
	if _, ok := tr.Lookup(mustAddr("2001:db9::1")); ok {
		t.Fatal("unrouted v6 address matched")
	}
}

func TestTrieFamiliesAreSeparate(t *testing.T) {
	var tr Trie
	tr.Insert(mustPrefix("0.0.0.0/0"), 1)
	if _, ok := tr.Lookup(mustAddr("2001:db8::1")); ok {
		t.Fatal("v4 default route matched a v6 address")
	}
	tr.Insert(mustPrefix("::/0"), 2)
	if got, _ := tr.Lookup(mustAddr("1.2.3.4")); got != 1 {
		t.Fatal("v6 default route shadowed v4")
	}
}

func TestTrieExactReplacement(t *testing.T) {
	var tr Trie
	tr.Insert(mustPrefix("192.0.2.0/24"), 7)
	tr.Insert(mustPrefix("192.0.2.0/24"), 8)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if got, _ := tr.Lookup(mustAddr("192.0.2.1")); got != 8 {
		t.Fatalf("Lookup = %v, want replacement 8", got)
	}
}

func TestRegistryOrigin(t *testing.T) {
	r := NewRegistry()
	as1 := &AS{ASN: 64500, Prefixes: []netip.Prefix{mustPrefix("198.51.100.0/24"), mustPrefix("2001:db8:100::/48")}}
	as2 := &AS{ASN: 64501, Prefixes: []netip.Prefix{mustPrefix("203.0.113.0/24")}}
	if err := r.Add(as1); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(as2); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(&AS{ASN: 64500}); err == nil {
		t.Fatal("duplicate ASN accepted")
	}
	if got := r.OriginOf(mustAddr("198.51.100.50")); got != as1 {
		t.Fatalf("OriginOf v4 = %v", got)
	}
	if got := r.OriginOf(mustAddr("2001:db8:100::9")); got != as1 {
		t.Fatalf("OriginOf v6 = %v", got)
	}
	if r.OriginOf(mustAddr("8.8.8.8")) != nil {
		t.Fatal("unrouted address has origin")
	}
	if !r.Routed(mustAddr("203.0.113.1")) || r.Routed(mustAddr("9.9.9.9")) {
		t.Fatal("Routed misreports")
	}
	asns := r.ASNs()
	if len(asns) != 2 || asns[0] != 64500 || asns[1] != 64501 {
		t.Fatalf("ASNs = %v", asns)
	}
}

func TestASOriginatesAndFamilies(t *testing.T) {
	as := &AS{ASN: 1, Prefixes: []netip.Prefix{
		mustPrefix("198.51.100.0/24"), mustPrefix("192.0.2.0/25"), mustPrefix("2001:db8::/40"),
	}}
	if !as.Originates(mustAddr("192.0.2.5")) {
		t.Fatal("Originates false negative")
	}
	if as.Originates(mustAddr("192.0.2.200")) {
		t.Fatal("Originates false positive outside /25")
	}
	if len(as.V4Prefixes()) != 2 || len(as.V6Prefixes()) != 1 {
		t.Fatalf("family split: %d v4, %d v6", len(as.V4Prefixes()), len(as.V6Prefixes()))
	}
}

func TestSpecialPurpose(t *testing.T) {
	special := []string{
		"10.1.2.3", "192.168.0.10", "172.16.5.5", "127.0.0.1", "169.254.1.1",
		"224.0.0.5", "255.255.255.255", "100.64.0.1", "198.18.0.1",
		"::1", "fc00::10", "fe80::1", "ff02::1", "2001:db8::1", "2002::1",
	}
	for _, s := range special {
		if !IsSpecialPurpose(mustAddr(s)) {
			t.Errorf("IsSpecialPurpose(%s) = false", s)
		}
	}
	public := []string{"8.8.8.8", "198.51.99.1", "2600::1", "2a00::1"}
	for _, s := range public {
		if IsSpecialPurpose(mustAddr(s)) {
			t.Errorf("IsSpecialPurpose(%s) = true", s)
		}
	}
}

func TestIsPrivateAndLoopback(t *testing.T) {
	if !IsPrivate(mustAddr("192.168.0.10")) || !IsPrivate(mustAddr("fc00::10")) {
		t.Fatal("paper's private spoof sources must be private")
	}
	if IsPrivate(mustAddr("8.8.8.8")) || IsPrivate(mustAddr("2600::1")) {
		t.Fatal("public address classified private")
	}
	if !IsLoopback(mustAddr("127.0.0.1")) || !IsLoopback(mustAddr("::1")) {
		t.Fatal("loopback misclassified")
	}
}

func TestEnumerateSubnetsV4(t *testing.T) {
	subs := EnumerateSubnets(mustPrefix("198.51.0.0/22"), 0)
	if len(subs) != 4 {
		t.Fatalf("a /22 splits into %d /24s, want 4", len(subs))
	}
	if subs[0] != mustPrefix("198.51.0.0/24") || subs[3] != mustPrefix("198.51.3.0/24") {
		t.Fatalf("subnets = %v", subs)
	}
	// A /24 or smaller yields its enclosing /24.
	subs = EnumerateSubnets(mustPrefix("198.51.100.128/25"), 0)
	if len(subs) != 1 || subs[0] != mustPrefix("198.51.100.0/24") {
		t.Fatalf("small prefix subnets = %v", subs)
	}
}

func TestEnumerateSubnetsCap(t *testing.T) {
	subs := EnumerateSubnets(mustPrefix("10.0.0.0/8"), 97)
	if len(subs) != 97 {
		t.Fatalf("cap: got %d subnets, want 97 (the paper's other-prefix cap)", len(subs))
	}
}

func TestEnumerateSubnetsV6(t *testing.T) {
	subs := EnumerateSubnets(mustPrefix("2001:db8:0:4::/62"), 0)
	if len(subs) != 4 {
		t.Fatalf("a /62 splits into %d /64s, want 4", len(subs))
	}
	if subs[1] != mustPrefix("2001:db8:0:5::/64") {
		t.Fatalf("subnets = %v", subs)
	}
}

func TestSubnetOf(t *testing.T) {
	if SubnetOf(mustAddr("198.51.100.77")) != mustPrefix("198.51.100.0/24") {
		t.Fatal("v4 SubnetOf wrong")
	}
	if SubnetOf(mustAddr("2001:db8:1:2::77")) != mustPrefix("2001:db8:1:2::/64") {
		t.Fatal("v6 SubnetOf wrong")
	}
}

func TestRandomHostAddrRespectsReservedV4(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sub := mustPrefix("198.51.100.0/24")
	for i := 0; i < 2000; i++ {
		a := RandomHostAddr(sub, rng)
		if !sub.Contains(a) {
			t.Fatalf("address %v outside subnet", a)
		}
		off := Offset(a)
		if off == 0 || off == 255 {
			t.Fatalf("reserved offset %d selected (network/broadcast)", off)
		}
	}
}

func TestRandomHostAddrV6Window(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sub := mustPrefix("2001:db8:9::/64")
	for i := 0; i < 2000; i++ {
		a := RandomHostAddr(sub, rng)
		off := Offset(a)
		if off < 2 || off > 99 {
			t.Fatalf("v6 offset %d outside the paper's 2..99 window", off)
		}
	}
}

func TestAddrAt(t *testing.T) {
	if AddrAt(mustPrefix("198.51.100.0/24"), 10) != mustAddr("198.51.100.10") {
		t.Fatal("v4 AddrAt wrong")
	}
	if AddrAt(mustPrefix("2001:db8::/64"), 10) != mustAddr("2001:db8::a") {
		t.Fatal("v6 AddrAt wrong")
	}
}

func TestQuickTrieMatchesLinearScan(t *testing.T) {
	// Property: trie lookup == brute-force longest-prefix scan.
	prefixes := []netip.Prefix{
		mustPrefix("10.0.0.0/8"), mustPrefix("10.64.0.0/10"), mustPrefix("10.64.1.0/24"),
		mustPrefix("172.16.0.0/12"), mustPrefix("192.0.2.0/24"), mustPrefix("0.0.0.0/2"),
	}
	var tr Trie
	for i, p := range prefixes {
		tr.Insert(p, ASN(i+1))
	}
	linear := func(a netip.Addr) (ASN, bool) {
		best, bestBits, ok := ASN(0), -1, false
		for i, p := range prefixes {
			if p.Contains(a) && p.Bits() > bestBits {
				best, bestBits, ok = ASN(i+1), p.Bits(), true
			}
		}
		return best, ok
	}
	f := func(raw uint32) bool {
		var b [4]byte
		b[0] = byte(raw >> 24)
		b[1] = byte(raw >> 16)
		b[2] = byte(raw >> 8)
		b[3] = byte(raw)
		a := netip.AddrFrom4(b)
		g1, ok1 := tr.Lookup(a)
		g2, ok2 := linear(a)
		return ok1 == ok2 && (!ok1 || g1 == g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubnetContainsItsAddrs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(hi uint16, lo uint16) bool {
		base := netip.AddrFrom4([4]byte{byte(hi >> 8), byte(hi), byte(lo >> 8), 0})
		sub, _ := base.Prefix(24)
		a := RandomHostAddr(sub, rng)
		return sub.Contains(a) && SubnetOf(a) == sub
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	var tr Trie
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		a := netip.AddrFrom4([4]byte{byte(rng.Intn(223) + 1), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
		p, _ := a.Prefix(8 + rng.Intn(17))
		tr.Insert(p, ASN(i))
	}
	b.ReportAllocs()
	addr := mustAddr("100.20.30.40")
	for i := 0; i < b.N; i++ {
		tr.Lookup(addr)
	}
}
