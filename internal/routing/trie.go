// Package routing models the control-plane state the experiment depends
// on: which AS originates which prefixes, longest-prefix-match lookup
// from an address to its origin AS, the IANA special-purpose ("bogon")
// address registry used for target admission, and the /24 and /64
// prefix arithmetic the spoofed-source generator needs.
package routing

import (
	"fmt"
	"net/netip"
)

// ASN is an autonomous system number.
type ASN uint32

// String formats the ASN in the conventional "ASxxxx" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// trieNode is a binary (unibit) trie node.
type trieNode struct {
	child [2]*trieNode
	set   bool
	val   ASN
}

// Trie is a longest-prefix-match table from IP prefixes to origin ASNs.
// It handles IPv4 and IPv6 prefixes in separate roots. The zero value is
// an empty table.
type Trie struct {
	v4, v6 trieNode
	n      int
}

// Len reports the number of inserted prefixes.
func (t *Trie) Len() int { return t.n }

func addrBit(a netip.Addr, i int) int {
	b := a.As16()
	if a.Is4() {
		b = netip.AddrFrom16(a.As16()).As16()
		// For IPv4, index from the start of the 4-byte form.
		b4 := a.As4()
		return int(b4[i/8]>>(7-i%8)) & 1
	}
	return int(b[i/8]>>(7-i%8)) & 1
}

// Insert maps prefix to asn, replacing any previous mapping for the exact
// prefix.
func (t *Trie) Insert(prefix netip.Prefix, asn ASN) {
	prefix = prefix.Masked()
	root := &t.v6
	if prefix.Addr().Is4() {
		root = &t.v4
	}
	node := root
	a := prefix.Addr()
	for i := 0; i < prefix.Bits(); i++ {
		bit := addrBit(a, i)
		if node.child[bit] == nil {
			node.child[bit] = &trieNode{}
		}
		node = node.child[bit]
	}
	if !node.set {
		t.n++
	}
	node.set = true
	node.val = asn
}

// Lookup returns the origin ASN for the longest matching prefix and
// whether any prefix matched.
//
//doors:hotpath
func (t *Trie) Lookup(addr netip.Addr) (ASN, bool) {
	root := &t.v6
	bits := 128
	if addr.Is4() {
		root = &t.v4
		bits = 32
	}
	node := root
	var best ASN
	found := false
	if node.set {
		best, found = node.val, true
	}
	for i := 0; i < bits && node != nil; i++ {
		node = node.child[addrBit(addr, i)]
		if node != nil && node.set {
			best, found = node.val, true
		}
	}
	return best, found
}
