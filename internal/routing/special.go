package routing

import "net/netip"

// specialPurpose lists the IANA special-purpose registries (RFC 6890)
// relevant to the experiment: addresses in these blocks are excluded from
// targeting (§3.1) and are treated as bogons by borders that filter them.
var specialPurpose = func() []netip.Prefix {
	raw := []string{
		// IPv4 (RFC 6890 and successors)
		"0.0.0.0/8",          // "this network"
		"10.0.0.0/8",         // private
		"100.64.0.0/10",      // shared address space (CGN)
		"127.0.0.0/8",        // loopback
		"169.254.0.0/16",     // link local
		"172.16.0.0/12",      // private
		"192.0.0.0/24",       // IETF protocol assignments
		"192.0.2.0/24",       // TEST-NET-1
		"192.88.99.0/24",     // 6to4 relay anycast
		"192.168.0.0/16",     // private
		"198.18.0.0/15",      // benchmarking
		"198.51.100.0/24",    // TEST-NET-2
		"203.0.113.0/24",     // TEST-NET-3
		"224.0.0.0/4",        // multicast
		"240.0.0.0/4",        // reserved
		"255.255.255.255/32", // limited broadcast
		// IPv6
		"::1/128",       // loopback
		"::/128",        // unspecified
		"::ffff:0:0/96", // IPv4-mapped
		"64:ff9b::/96",  // IPv4-IPv6 translation
		"100::/64",      // discard-only
		"2001::/23",     // IETF protocol assignments
		"2001:db8::/32", // documentation
		"2002::/16",     // 6to4
		"fc00::/7",      // unique local
		"fe80::/10",     // link local
		"ff00::/8",      // multicast
	}
	out := make([]netip.Prefix, len(raw))
	for i, s := range raw {
		out[i] = netip.MustParsePrefix(s)
	}
	return out
}()

// IsSpecialPurpose reports whether addr falls in an IANA special-purpose
// block (RFC 6890): private, loopback, documentation, multicast, etc.
//
//doors:hotpath
func IsSpecialPurpose(addr netip.Addr) bool {
	for _, p := range specialPurpose {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

// uniqueLocal is fc00::/7, parsed once: IsPrivate sits on the scanner
// categorization hot path and must not re-parse the prefix per call.
var uniqueLocal = netip.MustParsePrefix("fc00::/7")

// IsPrivate reports whether addr is RFC 1918 private or IPv6 unique-local
// space — the category the paper spoofs as "private or unique local".
//
//doors:hotpath
func IsPrivate(addr netip.Addr) bool {
	return addr.IsPrivate() || (addr.Is6() && uniqueLocal.Contains(addr))
}

// IsLoopback reports whether addr is the IPv4 or IPv6 loopback.
//
//doors:hotpath
func IsLoopback(addr netip.Addr) bool { return addr.IsLoopback() }
