// Package eventq implements the discrete-event scheduler that drives the
// simulated Internet. All simulation time is virtual: a Queue holds a
// monotonically non-decreasing clock that advances only when events run.
//
// Determinism is a design requirement. Events scheduled for the same
// instant run in the order they were scheduled (FIFO among equal
// timestamps), so a seeded simulation always produces identical results.
//
// The queue is the hottest structure in a survey run: every packet hop
// costs at least one event. It is therefore a hand-rolled binary heap of
// slab indices over value-typed items with a free-list, rather than
// container/heap over []*item — scheduling in steady state allocates
// nothing (the slab and free-list amortize to zero) and avoids the
// interface boxing container/heap imposes on every Push/Pop.
package eventq

import "time"

// Event is a callback scheduled to run at a virtual instant.
type Event func(now time.Duration)

type item struct {
	at  time.Duration
	seq uint64 // tie-break: schedule order
	fn  Event
}

// Queue is a virtual-time event queue. The zero value is ready to use.
// Queue is not safe for concurrent use; each simulation shard is
// single-threaded by design (determinism within a shard, parallelism
// across shards).
type Queue struct {
	now     time.Duration
	seq     uint64
	heap    []uint32 // binary heap of indices into items
	items   []item   // slab; slots recycled through free
	free    []uint32 // recycled slab slots
	stopped bool
	ran     uint64
}

// New returns an empty queue with the clock at zero.
func New() *Queue { return &Queue{} }

// Now reports the current virtual time.
func (q *Queue) Now() time.Duration { return q.now }

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Processed reports how many events have run so far.
func (q *Queue) Processed() uint64 { return q.ran }

func (q *Queue) less(i, j uint32) bool {
	a, b := &q.items[i], &q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *Queue) siftUp(i int) {
	h := q.heap
	idx := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(idx, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = idx
}

func (q *Queue) siftDown(i int) {
	h := q.heap
	n := len(h)
	idx := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && q.less(h[r], h[child]) {
			child = r
		}
		if !q.less(h[child], idx) {
			break
		}
		h[i] = h[child]
		i = child
	}
	h[i] = idx
}

// At schedules fn to run at virtual time at. Scheduling in the past is a
// programming error; such events are clamped to run "now" so the clock
// never moves backward.
//
//doors:hotpath
func (q *Queue) At(at time.Duration, fn Event) {
	if at < q.now {
		at = q.now
	}
	q.seq++
	var idx uint32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
		q.items[idx] = item{at: at, seq: q.seq, fn: fn}
	} else {
		idx = uint32(len(q.items))
		q.items = append(q.items, item{at: at, seq: q.seq, fn: fn})
	}
	q.heap = append(q.heap, idx)
	q.siftUp(len(q.heap) - 1)
}

// After schedules fn to run d after the current virtual time.
//
//doors:hotpath
func (q *Queue) After(d time.Duration, fn Event) {
	if d < 0 {
		d = 0
	}
	q.At(q.now+d, fn)
}

// Stop makes Run return after the currently executing event, leaving any
// remaining events queued.
func (q *Queue) Stop() { q.stopped = true }

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event ran.
//
//doors:hotpath
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	idx := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap = q.heap[:n]
	if n > 0 {
		q.siftDown(0)
	}
	it := &q.items[idx]
	at, fn := it.at, it.fn
	it.fn = nil // release the closure while the slot waits on the free-list
	q.free = append(q.free, idx)
	q.now = at
	q.ran++
	//lint:allow hotalloc -- dispatching the event IS the queue's job; what the callback allocates is charged to its owner, not the queue
	fn(q.now)
	return true
}

// releaseThreshold is the slab size (in items) above which a full drain
// releases the queue's arrays. Below it the arrays are kept for reuse:
// a caller cycling schedule/Run on a small queue would otherwise pay a
// regrow on every cycle for a residency win measured in kilobytes.
// Above it the slab is survey-sized — it was grown by the shard's peak
// outstanding-event count and is the drained queue's entire residency.
const releaseThreshold = 1 << 16

// Run processes events until the queue drains or Stop is called. It
// returns the final virtual time. A full drain of a large queue
// releases the slab, heap and free-list arrays: they are sized by the
// simulation's peak outstanding-event count, and between Net.Run
// returning and the shard's world dying (partition under the streaming
// engines, the whole Result lifetime under the retained one) they would
// otherwise be the queue's entire residency. The queue stays usable —
// scheduling after a drain regrows from empty.
func (q *Queue) Run() time.Duration {
	q.stopped = false
	for !q.stopped && q.Step() {
	}
	if len(q.heap) == 0 && cap(q.items) > releaseThreshold {
		q.heap, q.items, q.free = nil, nil, nil
	}
	return q.now
}

// RunUntil processes events with timestamps <= deadline, then advances the
// clock to deadline (if it is beyond the last event run). Events after the
// deadline stay queued.
func (q *Queue) RunUntil(deadline time.Duration) time.Duration {
	q.stopped = false
	for !q.stopped && len(q.heap) > 0 && q.items[q.heap[0]].at <= deadline {
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
	return q.now
}

// RunFor processes events for d of virtual time from the current instant.
func (q *Queue) RunFor(d time.Duration) time.Duration {
	return q.RunUntil(q.now + d)
}
