// Package eventq implements the discrete-event scheduler that drives the
// simulated Internet. All simulation time is virtual: a Queue holds a
// monotonically non-decreasing clock that advances only when events run.
//
// Determinism is a design requirement. Events scheduled for the same
// instant run in the order they were scheduled (FIFO among equal
// timestamps), so a seeded simulation always produces identical results.
package eventq

import (
	"container/heap"
	"time"
)

// Event is a callback scheduled to run at a virtual instant.
type Event func(now time.Duration)

type item struct {
	at  time.Duration
	seq uint64 // tie-break: schedule order
	fn  Event
}

type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }

func (h itemHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *itemHeap) Push(x any) { *h = append(*h, x.(*item)) }

func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Queue is a virtual-time event queue. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulator is single-threaded
// by design (determinism over parallelism).
type Queue struct {
	now     time.Duration
	seq     uint64
	heap    itemHeap
	stopped bool
	ran     uint64
}

// New returns an empty queue with the clock at zero.
func New() *Queue { return &Queue{} }

// Now reports the current virtual time.
func (q *Queue) Now() time.Duration { return q.now }

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Processed reports how many events have run so far.
func (q *Queue) Processed() uint64 { return q.ran }

// At schedules fn to run at virtual time at. Scheduling in the past is a
// programming error; such events are clamped to run "now" so the clock
// never moves backward.
func (q *Queue) At(at time.Duration, fn Event) {
	if at < q.now {
		at = q.now
	}
	q.seq++
	heap.Push(&q.heap, &item{at: at, seq: q.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (q *Queue) After(d time.Duration, fn Event) {
	if d < 0 {
		d = 0
	}
	q.At(q.now+d, fn)
}

// Stop makes Run return after the currently executing event, leaving any
// remaining events queued.
func (q *Queue) Stop() { q.stopped = true }

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event ran.
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	it := heap.Pop(&q.heap).(*item)
	q.now = it.at
	q.ran++
	it.fn(q.now)
	return true
}

// Run processes events until the queue drains or Stop is called. It
// returns the final virtual time.
func (q *Queue) Run() time.Duration {
	q.stopped = false
	for !q.stopped && q.Step() {
	}
	return q.now
}

// RunUntil processes events with timestamps <= deadline, then advances the
// clock to deadline (if it is beyond the last event run). Events after the
// deadline stay queued.
func (q *Queue) RunUntil(deadline time.Duration) time.Duration {
	q.stopped = false
	for !q.stopped && len(q.heap) > 0 && q.heap[0].at <= deadline {
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
	return q.now
}

// RunFor processes events for d of virtual time from the current instant.
func (q *Queue) RunFor(d time.Duration) time.Duration {
	return q.RunUntil(q.now + d)
}
