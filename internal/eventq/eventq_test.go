package eventq

import (
	"testing"
	"testing/quick"
	"time"
)

func TestOrderingByTime(t *testing.T) {
	q := New()
	var got []int
	q.At(30*time.Millisecond, func(time.Duration) { got = append(got, 3) })
	q.At(10*time.Millisecond, func(time.Duration) { got = append(got, 1) })
	q.At(20*time.Millisecond, func(time.Duration) { got = append(got, 2) })
	end := q.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("final time = %v, want 30ms", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	q := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.At(time.Second, func(time.Duration) { got = append(got, i) })
	}
	q.Run()
	for i := 0; i < 100; i++ {
		if got[i] != i {
			t.Fatalf("got[%d] = %d; equal-timestamp events must run FIFO", i, got[i])
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	q := New()
	var fired time.Duration
	q.At(time.Second, func(now time.Duration) {
		q.After(500*time.Millisecond, func(now time.Duration) { fired = now })
	})
	q.Run()
	if fired != 1500*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 1.5s", fired)
	}
}

func TestPastSchedulingClamped(t *testing.T) {
	q := New()
	var fired time.Duration
	q.At(time.Second, func(now time.Duration) {
		q.At(0, func(now time.Duration) { fired = now })
	})
	q.Run()
	if fired != time.Second {
		t.Fatalf("past event fired at %v, want clamped to 1s", fired)
	}
	if q.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s", q.Now())
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	q := New()
	ran := 0
	q.At(time.Second, func(time.Duration) { ran++ })
	q.At(3*time.Second, func(time.Duration) { ran++ })
	q.RunUntil(2 * time.Second)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if q.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s (advanced to deadline)", q.Now())
	}
	if q.Len() != 1 {
		t.Fatalf("pending = %d, want 1", q.Len())
	}
	q.Run()
	if ran != 2 || q.Now() != 3*time.Second {
		t.Fatalf("after Run: ran=%d now=%v", ran, q.Now())
	}
}

func TestRunForIsRelative(t *testing.T) {
	q := New()
	q.At(time.Second, func(time.Duration) {})
	q.Run()
	q.At(1500*time.Millisecond, func(time.Duration) {})
	q.RunFor(time.Second) // until t=2s
	if q.Len() != 0 {
		t.Fatalf("event at 1.5s should have run inside RunFor window")
	}
	if q.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", q.Now())
	}
}

func TestStop(t *testing.T) {
	q := New()
	ran := 0
	q.At(time.Second, func(time.Duration) { ran++; q.Stop() })
	q.At(2*time.Second, func(time.Duration) { ran++ })
	q.Run()
	if ran != 1 {
		t.Fatalf("ran = %d after Stop, want 1", ran)
	}
	if q.Len() != 1 {
		t.Fatalf("pending = %d, want 1", q.Len())
	}
}

func TestProcessedCounter(t *testing.T) {
	q := New()
	for i := 0; i < 17; i++ {
		q.After(time.Duration(i)*time.Millisecond, func(time.Duration) {})
	}
	q.Run()
	if q.Processed() != 17 {
		t.Fatalf("Processed = %d, want 17", q.Processed())
	}
}

func TestStepOnEmpty(t *testing.T) {
	q := New()
	if q.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}

func TestSlabSlotsRecycled(t *testing.T) {
	// Steady-state schedule/run cycles must reuse slab slots instead of
	// growing the item store without bound.
	q := New()
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			q.After(time.Duration(i)*time.Millisecond, func(time.Duration) {})
		}
		q.Run()
	}
	if got := len(q.items); got > 200 {
		t.Fatalf("slab grew to %d slots for 100 concurrent events; free-list not recycling", got)
	}
}

func TestInterleavedScheduleAndStep(t *testing.T) {
	// Mixing Step with fresh scheduling exercises free-list churn while
	// the heap is non-empty; ordering must survive slot reuse.
	q := New()
	var got []int
	q.At(1*time.Millisecond, func(time.Duration) { got = append(got, 1) })
	q.At(3*time.Millisecond, func(time.Duration) { got = append(got, 3) })
	q.Step()
	q.At(2*time.Millisecond, func(time.Duration) { got = append(got, 2) })
	q.At(4*time.Millisecond, func(time.Duration) { got = append(got, 4) })
	q.Run()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// BenchmarkQueue measures steady-state scheduling cost: the slab and
// free-list should make the amortized allocs/op ~0 (run with -benchmem).
func BenchmarkQueue(b *testing.B) {
	q := New()
	noop := func(time.Duration) {}
	// Warm the slab so the measured loop sees steady state.
	for i := 0; i < 1024; i++ {
		q.After(time.Duration(i%97)*time.Microsecond, noop)
	}
	q.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.After(time.Duration(i%97)*time.Microsecond, noop)
		if q.Len() >= 1024 {
			q.Run()
		}
	}
	q.Run()
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		q := New()
		for j := 0; j < 1000; j++ {
			q.At(time.Duration(j%97)*time.Millisecond, func(time.Duration) {})
		}
		q.Run()
	}
}

func TestQuickTimeNeverRegresses(t *testing.T) {
	// Property: no matter the scheduling pattern, observed event times
	// are non-decreasing.
	f := func(delays []uint16) bool {
		q := New()
		var times []time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Microsecond
			q.After(d, func(now time.Duration) {
				times = append(times, now)
				if len(times) < 50 { // nested re-scheduling
					q.After(d/2, func(now time.Duration) { times = append(times, now) })
				}
			})
		}
		q.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReleasesLargeSlabs(t *testing.T) {
	noop := func(time.Duration) {}

	// Small queue: slabs survive a full drain so schedule/Run cycles
	// stay regrow-free.
	q := New()
	for i := 0; i < 1024; i++ {
		q.After(time.Duration(i)*time.Microsecond, noop)
	}
	q.Run()
	if q.items == nil || q.free == nil {
		t.Fatalf("small drain released slabs: items=%v free=%v", q.items == nil, q.free == nil)
	}

	// Survey-sized queue: a full drain must drop the arrays — they are
	// the drained queue's entire residency.
	q = New()
	for i := 0; i <= releaseThreshold; i++ {
		q.After(time.Duration(i)*time.Microsecond, noop)
	}
	q.Run()
	if q.heap != nil || q.items != nil || q.free != nil {
		t.Fatalf("large drain kept slabs: heap=%d items=%d free=%d", cap(q.heap), cap(q.items), cap(q.free))
	}

	// Still usable after release.
	ran := false
	q.After(time.Microsecond, func(time.Duration) { ran = true })
	q.Run()
	if !ran {
		t.Fatal("queue unusable after slab release")
	}

	// A partial drain (Stop mid-run) must keep everything.
	q = New()
	for i := 0; i <= releaseThreshold; i++ {
		q.After(time.Duration(i)*time.Microsecond, noop)
	}
	q.After(0, func(time.Duration) { q.Stop() })
	q.Run()
	if q.items == nil {
		t.Fatal("partial drain released slabs with events still queued")
	}
}
