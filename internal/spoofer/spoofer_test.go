package spoofer

import (
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/ditl"
	"repro/internal/netsim"
	"repro/internal/routing"
)

func addr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// build attaches a receiver AS plus one client AS with the given
// filtering posture.
func build(t *testing.T, clientOSAV, clientDSAV, nat bool) (*netsim.Network, *Client, *Receiver) {
	t.Helper()
	reg := routing.NewRegistry()
	rxAS := &routing.AS{ASN: 1, Prefixes: []netip.Prefix{prefix("30.1.0.0/16")}}
	clAS := &routing.AS{ASN: 2, Prefixes: []netip.Prefix{prefix("30.2.0.0/16")},
		OSAV: clientOSAV, DSAV: clientDSAV}
	if err := reg.Add(rxAS); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(clAS); err != nil {
		t.Fatal(err)
	}
	n := netsim.New(reg, netsim.Config{Seed: 3})
	rxHost, err := n.Attach("receiver", rxAS, addr("30.1.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(rxHost, addr("30.1.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	clAddr := addr("30.2.0.10")
	clHost, err := n.Attach("client", clAS, clAddr)
	if err != nil {
		t.Fatal(err)
	}
	if nat {
		clAddr = netip.Addr{}
	}
	cl, err := NewClient(clHost, clAddr)
	if err != nil {
		t.Fatal(err)
	}
	return n, cl, rx
}

func TestSessionNoFiltering(t *testing.T) {
	n, cl, rx := build(t, false, false, false)
	res, err := Session(n, cl, rx, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.OSAV != VerdictAllowed {
		t.Errorf("OSAV = %v, want allowed (no BCP 38)", res.OSAV)
	}
	if res.DSAV != VerdictAllowed {
		t.Errorf("DSAV = %v, want allowed", res.DSAV)
	}
}

func TestSessionOSAVBlocksOutbound(t *testing.T) {
	n, cl, rx := build(t, true, false, false)
	res, err := Session(n, cl, rx, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.OSAV != VerdictBlocked {
		t.Errorf("OSAV = %v, want blocked", res.OSAV)
	}
	if res.DSAV != VerdictAllowed {
		t.Errorf("DSAV = %v: OSAV at the client must not affect inbound", res.DSAV)
	}
}

func TestSessionDSAVBlocksInbound(t *testing.T) {
	n, cl, rx := build(t, false, true, false)
	res, err := Session(n, cl, rx, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.DSAV != VerdictBlocked {
		t.Errorf("DSAV = %v, want blocked", res.DSAV)
	}
}

func TestSessionNATUntestable(t *testing.T) {
	n, cl, rx := build(t, false, false, true)
	res, err := Session(n, cl, rx, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.DSAV != VerdictUntestable {
		t.Errorf("DSAV = %v, want untestable behind NAT (§2)", res.DSAV)
	}
	if res.OSAV != VerdictAllowed {
		t.Errorf("OSAV = %v: outbound test works from behind NAT", res.OSAV)
	}
}

// TestCampaignAgreesWithGroundTruth runs Spoofer sessions from one
// volunteer per AS of a ditl population and compares the inferred
// no-DSAV share with the generation ground truth — the [32] vs. paper
// consistency check of §2.
func TestCampaignAgreesWithGroundTruth(t *testing.T) {
	pop := ditl.Generate(ditl.Params{Seed: 61, ASes: 300})
	reg := routing.NewRegistry()
	rxAS := &routing.AS{ASN: 1, Prefixes: []netip.Prefix{prefix("30.1.0.0/16")}}
	if err := reg.Add(rxAS); err != nil {
		t.Fatal(err)
	}
	truthNoDSAV := 0
	for _, as := range pop.ASes {
		if err := reg.Add(&routing.AS{
			ASN: as.ASN, Prefixes: as.Prefixes(), DSAV: as.DSAV, OSAV: as.OSAV,
		}); err != nil {
			t.Fatal(err)
		}
		if !as.DSAV {
			truthNoDSAV++
		}
	}
	n := netsim.New(reg, netsim.Config{Seed: 62})
	rxHost, err := n.Attach("receiver", rxAS, addr("30.1.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(rxHost, addr("30.1.0.1"))
	if err != nil {
		t.Fatal(err)
	}

	camp := &Campaign{}
	for i, as := range pop.ASes {
		// One volunteer per AS; a third run behind NAT (the paper's
		// complaint about Spoofer coverage).
		sub := routing.EnumerateSubnets(as.V4Prefixes[0], 1)[0]
		pub := routing.AddrAt(sub, 200)
		host, err := n.Attach(fmt.Sprintf("vol-%d", i), reg.AS(as.ASN), pub)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			pub = netip.Addr{} // NATed volunteer
		}
		cl, err := NewClient(host, pub)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Session(n, cl, rx, uint64(i)*10)
		if err != nil {
			t.Fatal(err)
		}
		camp.Results = append(camp.Results, res)
	}

	if got := camp.UntestableShare(); got < 0.30 || got > 0.37 {
		t.Errorf("untestable share = %.2f, want ≈1/3 (NATed volunteers)", got)
	}
	inferred := camp.LacksDSAVShare()
	truth := float64(truthNoDSAV) / float64(len(pop.ASes))
	if diff := inferred - truth; diff < -0.05 || diff > 0.05 {
		t.Errorf("Spoofer-inferred no-DSAV share %.2f vs ground truth %.2f", inferred, truth)
	}
	// Per-session verdicts must match each AS's ground truth exactly
	// (testable sessions only).
	for i, res := range camp.Results {
		as := pop.ASes[i]
		if res.DSAV == VerdictUntestable {
			continue
		}
		wantAllowed := !as.DSAV
		if (res.DSAV == VerdictAllowed) != wantAllowed {
			t.Fatalf("AS %v: DSAV verdict %v vs ground truth dsav=%v", as.ASN, res.DSAV, as.DSAV)
		}
	}
}

func TestSessionThroughNATRewrites(t *testing.T) {
	reg := routing.NewRegistry()
	rxAS := &routing.AS{ASN: 1, Prefixes: []netip.Prefix{prefix("30.1.0.0/16")}}
	clAS := &routing.AS{ASN: 2, Prefixes: []netip.Prefix{prefix("30.2.0.0/16")}}
	reg.Add(rxAS)
	reg.Add(clAS)
	n := netsim.New(reg, netsim.Config{Seed: 9})
	rxHost, err := n.Attach("receiver", rxAS, addr("30.1.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(rxHost, addr("30.1.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	gwHost, err := n.Attach("cpe", clAS, addr("30.2.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	gw, err := netsim.NewNATGateway(gwHost, addr("30.2.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	inside, err := gw.Attach(addr("192.168.1.2"))
	if err != nil {
		t.Fatal(err)
	}

	res, err := SessionThroughNAT(n, inside, gw.Public(), rx, 700)
	if err != nil {
		t.Fatal(err)
	}
	if res.OSAV != VerdictRewritten {
		t.Errorf("OSAV = %v, want rewritten (NAT un-spoofs outbound probes)", res.OSAV)
	}
	if res.DSAV != VerdictUntestable {
		t.Errorf("DSAV = %v, want untestable behind NAT", res.DSAV)
	}
	if gw.RewrittenSpoofs == 0 {
		t.Error("gateway did not count the rewritten spoof")
	}
}
