package spoofer

// Edge-case probes from the paper's §5 follow-ups: sources spoofed as
// the destination itself, as loopback, and as IPv4-mapped IPv6. Each
// case pins which layer disposes of the probe — the border (bogon
// filter, DSAV) or the destination kernel (Table 6) — and which OS
// profiles deliver it anyway.

import (
	"net/netip"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/oskernel"
	"repro/internal/packet"
	"repro/internal/routing"
)

// edgeWorld is a two-AS lab: a receiver AS (dual-stack, configurable
// filtering posture and victim OS) and an unfiltered client AS the
// spoofed probes are launched from.
type edgeWorld struct {
	n       *netsim.Network
	rx      *Receiver
	outside *netsim.Host // sender in the client AS (probes cross the border)
	inside  *netsim.Host // sender in the receiver AS (probes stay internal)
}

var (
	rxV4 = addr("30.1.0.1")
	rxV6 = addr("2400:30::1")
)

func buildEdge(t *testing.T, filterBogons, dsav bool, os *oskernel.Profile) edgeWorld {
	t.Helper()
	reg := routing.NewRegistry()
	rxAS := &routing.AS{ASN: 1,
		Prefixes:     []netip.Prefix{prefix("30.1.0.0/16"), prefix("2400:30::/32")},
		FilterBogons: filterBogons, DSAV: dsav}
	clAS := &routing.AS{ASN: 2, Prefixes: []netip.Prefix{prefix("30.2.0.0/16")}}
	for _, as := range []*routing.AS{rxAS, clAS} {
		if err := reg.Add(as); err != nil {
			t.Fatal(err)
		}
	}
	n := netsim.New(reg, netsim.Config{Seed: 5})
	rxHost, err := n.Attach("receiver", rxAS, rxV4, rxV6)
	if err != nil {
		t.Fatal(err)
	}
	rxHost.OS = os
	rx, err := NewReceiver(rxHost, rxV4)
	if err != nil {
		t.Fatal(err)
	}
	outside, err := n.Attach("outside", clAS, addr("30.2.0.10"))
	if err != nil {
		t.Fatal(err)
	}
	inside, err := n.Attach("inside", rxAS, addr("30.1.0.99"))
	if err != nil {
		t.Fatal(err)
	}
	return edgeWorld{n: n, rx: rx, outside: outside, inside: inside}
}

func TestSpoofedSourceEdgeCases(t *testing.T) {
	cases := []struct {
		name         string
		src, dst     netip.Addr
		sameAS       bool // launch from inside the receiver AS
		filterBogons bool
		dsav         bool
		os           *oskernel.Profile
		wantSeen     bool
		wantDrop     netsim.DropReason // checked when !wantSeen
	}{
		// Destination-as-source (§5.3.2): the kernel, not the network,
		// decides — and modern Linux splits by family.
		{name: "dst-as-src v4 dropped by modern linux kernel",
			src: rxV4, dst: rxV4, os: oskernel.UbuntuModern,
			wantDrop: netsim.DropKernelSpoof},
		{name: "dst-as-src v4 delivered by freebsd",
			src: rxV4, dst: rxV4, os: oskernel.FreeBSD12, wantSeen: true},
		{name: "dst-as-src v6 delivered by modern linux",
			src: rxV6, dst: rxV6, os: oskernel.UbuntuModern, wantSeen: true},
		{name: "dst-as-src v4 delivered when kernel unknown",
			src: rxV4, dst: rxV4, os: nil, wantSeen: true},
		{name: "dst-as-src stopped at the border by DSAV",
			src: rxV4, dst: rxV4, dsav: true, os: oskernel.FreeBSD12,
			wantDrop: netsim.DropDSAV},
		{name: "dst-as-src from inside the AS bypasses DSAV",
			src: rxV4, dst: rxV4, sameAS: true, dsav: true,
			os: oskernel.FreeBSD12, wantSeen: true},

		// Loopback sources: bogons to a filtering border, a kernel
		// question otherwise — only Windows Server 2003 delivers the
		// IPv4 variant, only pre-4.15-ish Linux the IPv6 one.
		{name: "loopback v4 dropped by bogon filter",
			src: addr("127.0.0.1"), dst: rxV4, filterBogons: true,
			os: oskernel.WindowsLegacy, wantDrop: netsim.DropBogonSource},
		{name: "loopback v4 delivered by legacy windows",
			src: addr("127.0.0.1"), dst: rxV4, os: oskernel.WindowsLegacy,
			wantSeen: true},
		{name: "loopback v4 dropped by modern linux kernel",
			src: addr("127.0.0.1"), dst: rxV4, os: oskernel.UbuntuModern,
			wantDrop: netsim.DropKernelSpoof},
		{name: "loopback v6 delivered by legacy linux",
			src: addr("::1"), dst: rxV6, os: oskernel.UbuntuLegacy,
			wantSeen: true},
		{name: "loopback v6 dropped by modern linux kernel",
			src: addr("::1"), dst: rxV6, os: oskernel.UbuntuModern,
			wantDrop: netsim.DropKernelSpoof},

		// IPv4-mapped IPv6 sources (::ffff:0:0/96): special-purpose
		// space, so filtering borders treat them as bogons; without
		// filtering they sail through — the kernel spoof check only
		// cares about dst-as-src and loopback.
		{name: "mapped-v4 source dropped by bogon filter",
			src: addr("::ffff:30.2.0.10"), dst: rxV6, filterBogons: true,
			os: oskernel.UbuntuModern, wantDrop: netsim.DropBogonSource},
		{name: "mapped-v4 source delivered without filtering",
			src: addr("::ffff:30.2.0.10"), dst: rxV6,
			os: oskernel.UbuntuModern, wantSeen: true},
		// A mapped loopback is still loopback to the kernel, and it
		// arrived over v6, so the v6 acceptance knob governs.
		{name: "mapped loopback dropped by modern linux kernel",
			src: addr("::ffff:127.0.0.1"), dst: rxV6,
			os: oskernel.UbuntuModern, wantDrop: netsim.DropKernelSpoof},
		{name: "mapped loopback delivered by legacy linux",
			src: addr("::ffff:127.0.0.1"), dst: rxV6,
			os: oskernel.UbuntuLegacy, wantSeen: true},
	}

	for i, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := buildEdge(t, c.filterBogons, c.dsav, c.os)
			nonce := uint64(1000 + i)
			raw, err := packet.BuildUDP(c.src, c.dst, probePort, probePort, 64, encodeNonce(nonce))
			if err != nil {
				t.Fatal(err)
			}
			sender := w.outside
			if c.sameAS {
				sender = w.inside
			}
			sender.SendRaw(raw)
			w.n.Run()

			if got := w.rx.Saw(nonce); got != c.wantSeen {
				t.Fatalf("probe seen = %v, want %v (drops: %v)", got, c.wantSeen, w.n.Drops())
			}
			if !c.wantSeen {
				if got := w.n.Drops()[c.wantDrop]; got != 1 {
					t.Fatalf("drops[%v] = %d, want 1 (all drops: %v)", c.wantDrop, got, w.n.Drops())
				}
			}
		})
	}
}

// TestMappedV4SourceCannotMixFamilies pins the raw-socket boundary: a
// 4-in-6 source is an IPv6 address, so pairing it with an IPv4
// destination is a malformed probe the builder refuses to serialize.
func TestMappedV4SourceCannotMixFamilies(t *testing.T) {
	_, err := packet.BuildUDP(addr("::ffff:30.2.0.10"), rxV4, probePort, probePort, 64, encodeNonce(1))
	if err == nil {
		t.Fatal("BuildUDP accepted a mapped-v4 source with a v4 destination")
	}
	if !strings.Contains(err.Error(), "families") {
		t.Fatalf("unexpected error: %v", err)
	}
}
