// Package spoofer models the client-based SAV measurement system the
// paper compares against (§2): the CAIDA Spoofer project. A volunteer
// inside a network runs a client that
//
//  1. sends spoofed-source probes OUT to a measurement receiver — if
//     they arrive, the host network lacks origin-side SAV (OSAV/BCP 38);
//  2. receives probes sent BY the receiver with sources spoofed to look
//     internal to the client's network — if they arrive, the network
//     lacks destination-side SAV (DSAV).
//
// The package also reproduces Spoofer's structural limitation the paper
// improves on: a client behind NAT has no public address the receiver
// can send to, so inbound DSAV cannot be tested at all (§2: "a
// significant portion of the Spoofer clients are run behind NAT").
package spoofer

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/routing"
)

// Verdict is a three-valued measurement outcome.
type Verdict int

// Verdicts.
const (
	VerdictUntestable Verdict = iota // e.g. NAT prevents the test
	VerdictBlocked                   // SAV in place: probes filtered
	VerdictAllowed                   // no SAV: probes arrived
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictBlocked:
		return "blocked"
	case VerdictAllowed:
		return "allowed"
	default:
		return "untestable"
	}
}

// Result is one client session's outcome.
type Result struct {
	ASN  routing.ASN
	OSAV Verdict // outbound spoofing (BCP 38)
	DSAV Verdict // inbound spoofed-internal
	NAT  bool
}

// Receiver is the measurement server: a host with a well-known address
// that counts arriving probes by session nonce.
type Receiver struct {
	Host *netsim.Host
	Addr netip.Addr

	seen map[uint64]bool
}

// probePort is the spoofer protocol's UDP port.
const probePort = 54321

// NewReceiver binds a receiver to host at addr.
func NewReceiver(host *netsim.Host, addr netip.Addr) (*Receiver, error) {
	r := &Receiver{Host: host, Addr: addr, seen: make(map[uint64]bool)}
	err := host.BindUDP(probePort, func(now time.Duration, src netip.Addr, sp uint16, dst netip.Addr, dp uint16, payload []byte) {
		if nonce, ok := decodeNonce(payload); ok {
			r.seen[nonce] = true
		}
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Saw reports whether a probe with the nonce arrived.
func (r *Receiver) Saw(nonce uint64) bool { return r.seen[nonce] }

func encodeNonce(nonce uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(nonce >> (8 * (7 - i)))
	}
	return b
}

func decodeNonce(b []byte) (uint64, bool) {
	if len(b) < 8 {
		return 0, false
	}
	var n uint64
	for i := 0; i < 8; i++ {
		n = n<<8 | uint64(b[i])
	}
	return n, true
}

// Client is a volunteer's measurement client inside a network.
type Client struct {
	Host *netsim.Host
	// Addr is the client's public address; invalid when behind NAT.
	Addr netip.Addr
	// NAT marks a client without a public address (§2's limitation).
	NAT bool

	recvNonces map[uint64]bool
}

// NewClient attaches client state to a host. addr is the host's public
// address, or the zero Addr for a NATed client.
func NewClient(host *netsim.Host, addr netip.Addr) (*Client, error) {
	c := &Client{Host: host, Addr: addr, NAT: !addr.IsValid(), recvNonces: make(map[uint64]bool)}
	if !c.NAT {
		err := host.BindUDP(probePort, func(now time.Duration, src netip.Addr, sp uint16, dst netip.Addr, dp uint16, payload []byte) {
			if nonce, ok := decodeNonce(payload); ok {
				c.recvNonces[nonce] = true
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Session runs the full Spoofer-style measurement between client and
// receiver and returns the verdicts. nonceBase distinguishes sessions.
func Session(n *netsim.Network, c *Client, r *Receiver, nonceBase uint64) (*Result, error) {
	res := &Result{ASN: c.Host.AS.ASN, NAT: c.NAT}

	// OSAV test: the client emits a probe whose source is outside its
	// network (the receiver's own prefix makes an unambiguous outside
	// source).
	outNonce := nonceBase + 1
	spoofSrc := r.Addr.Prev() // an address clearly not the client's
	raw, err := packet.BuildUDP(spoofSrc, r.Addr, probePort, probePort, 64, encodeNonce(outNonce))
	if err != nil {
		return nil, err
	}
	c.Host.SendRaw(raw)
	n.Run()
	if r.Saw(outNonce) {
		res.OSAV = VerdictAllowed
	} else {
		res.OSAV = VerdictBlocked
	}

	// DSAV test: the receiver sends the client a probe spoofed to look
	// internal to the client's network. Impossible behind NAT.
	if c.NAT {
		res.DSAV = VerdictUntestable
		return res, nil
	}
	inNonce := nonceBase + 2
	internalSrc, ok := internalSourceFor(c)
	if !ok {
		res.DSAV = VerdictUntestable
		return res, nil
	}
	raw, err = packet.BuildUDP(internalSrc, c.Addr, probePort, probePort, 64, encodeNonce(inNonce))
	if err != nil {
		return nil, err
	}
	r.Host.SendRaw(raw)
	n.Run()
	if c.recvNonces[inNonce] {
		res.DSAV = VerdictAllowed
	} else {
		res.DSAV = VerdictBlocked
	}
	return res, nil
}

// internalSourceFor picks an address inside the client's AS distinct
// from the client itself.
func internalSourceFor(c *Client) (netip.Addr, bool) {
	for _, p := range c.Host.AS.Prefixes {
		if p.Addr().Is4() != c.Addr.Is4() {
			continue
		}
		sub := routing.EnumerateSubnets(p, 2)
		for _, s := range sub {
			for off := uint64(1); off < 20; off++ {
				a := routing.AddrAt(s, off)
				if a != c.Addr {
					return a, true
				}
			}
		}
	}
	return netip.Addr{}, false
}

// Campaign runs sessions from clients in every given AS and aggregates
// the Spoofer-style per-AS statistics the paper quotes from [32].
type Campaign struct {
	Results []*Result
}

// LacksDSAVShare is the fraction of testable (non-NAT) sessions that
// found DSAV absent — [32]'s 67%/74% statistic.
func (c *Campaign) LacksDSAVShare() float64 {
	tested, allowed := 0, 0
	for _, r := range c.Results {
		if r.DSAV == VerdictUntestable {
			continue
		}
		tested++
		if r.DSAV == VerdictAllowed {
			allowed++
		}
	}
	if tested == 0 {
		return 0
	}
	return float64(allowed) / float64(tested)
}

// UntestableShare is the fraction of sessions where NAT (or addressing)
// prevented the DSAV test.
func (c *Campaign) UntestableShare() float64 {
	if len(c.Results) == 0 {
		return 0
	}
	n := 0
	for _, r := range c.Results {
		if r.DSAV == VerdictUntestable {
			n++
		}
	}
	return float64(n) / float64(len(c.Results))
}

// ErrNoAS reports a client without AS attachment.
var ErrNoAS = fmt.Errorf("spoofer: client host has no AS")

// VerdictRewritten reports that outbound spoofed probes arrived but
// with their source rewritten by a NAT — Spoofer's third outbound
// outcome in the wild.
const VerdictRewritten Verdict = 3

// SessionThroughNAT runs a session for a volunteer behind a NAT
// gateway: the OSAV probe is emitted through the gateway (which
// rewrites its spoofed source), and the inbound DSAV test is untestable
// because the client has no public address.
func SessionThroughNAT(n *netsim.Network, inside *netsim.InsideHost, gwPublic netip.Addr, r *Receiver, nonceBase uint64) (*Result, error) {
	res := &Result{NAT: true, DSAV: VerdictUntestable}

	outNonce := nonceBase + 1
	spoofSrc := r.Addr.Prev()
	raw, err := packet.BuildUDP(spoofSrc, r.Addr, probePort, probePort, 64, encodeNonce(outNonce))
	if err != nil {
		return nil, err
	}
	inside.SendRaw(raw)
	n.Run()
	switch {
	case !r.Saw(outNonce):
		res.OSAV = VerdictBlocked
	case gwPublic != spoofSrc:
		// Arrived, but the NAT rewrote the claimed source to its public
		// address — which the receiver can compare against the payload's
		// claimed source.
		res.OSAV = VerdictRewritten
	default:
		res.OSAV = VerdictAllowed
	}
	return res, nil
}
