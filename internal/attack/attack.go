// Package attack simulates the Kaminsky-style cache poisoning attack
// that motivates the paper's case study (§5.1-§5.2): an off-path
// attacker who can induce recursive-to-authoritative queries — here,
// exactly because the victim's network lacks DSAV and the resolver's
// ACL trusts spoofed-internal sources — races forged responses against
// the genuine authoritative answer. The attacker must guess the
// resolver's (source port, transaction ID) pair; a resolver with no
// source-port randomization leaves only the 16-bit transaction ID
// (§5.2.1: "the search space is reduced from 2^32 to 2^16").
//
// The simulation runs the real pipeline: the trigger query is a
// spoofed-source UDP packet, forged responses are raw packets spoofing
// the authoritative server's address, and success means the victim's
// cache actually serves the attacker's record afterward.
package attack

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/authserver"
	"repro/internal/detrand"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/oskernel"
	"repro/internal/resolver"
	"repro/internal/routing"
)

// Salt constants for the attack package's detrand domains (band 81+;
// the saltbands analyzer in internal/lint registers every `salt* = N +
// iota` block and rejects overlaps between packages).
const (
	// saltAttackRace keys the attacker's per-run draw stream (trigger
	// txn IDs, forgery port/ID guesses).
	saltAttackRace = 81 + iota
	// saltAllocStartup keys the victim allocator RNG built by newRand.
	saltAllocStartup
)

// Config parameterizes an attack run.
type Config struct {
	// Ports is the victim resolver's source-port allocator.
	Ports resolver.PortAllocator
	// Races is the number of Kaminsky rounds (each triggers a query for
	// a fresh name, so negative caching never blocks the attack).
	Races int
	// ForgeriesPerRace is the number of forged responses sent per round.
	ForgeriesPerRace int
	// PortGuessLo/PortGuessHi bound the attacker's port guesses
	// (inclusive-exclusive): an attacker who observed a fixed port
	// guesses only it; against a randomizing resolver the guesses
	// spread over the inferred pool.
	PortGuessLo, PortGuessHi uint16
	// VictimDSAV deploys DSAV at the victim's border: the attack's
	// trigger queries never arrive (the paper's remedy).
	VictimDSAV bool
	// Victim0x20 enables DNS 0x20 case randomization on the victim:
	// forged responses must also echo the randomized case.
	Victim0x20 bool
	// Seed drives all randomness.
	Seed int64
}

// Result summarizes an attack run.
type Result struct {
	// Poisoned reports whether any race succeeded.
	Poisoned bool
	// SuccessRace is the 1-based round that succeeded (0 if none).
	SuccessRace int
	// Forgeries is the total number of forged responses sent.
	Forgeries int
	// VictimQueries counts the trigger queries sent.
	VictimQueries int
	// InducedQueries counts recursive-to-authoritative queries actually
	// observed at the genuine server — zero when DSAV blocks the
	// trigger.
	InducedQueries int
}

// world wires the attack scenario: a victim AS without DSAV hosting a
// closed resolver, the genuine authoritative server for the attacked
// zone, and the attacker in a third AS without OSAV.
type world struct {
	net      *netsim.Network
	res      *resolver.Resolver
	attacker *netsim.Host
	auth     *authserver.Server

	victimAddr   netip.Addr
	authAddr     netip.Addr
	attackerAddr netip.Addr
	spoofClient  netip.Addr // internal source the attacker masquerades as
	evilAddr     netip.Addr // address the forged answers point at
}

func buildWorld(cfg Config) (*world, error) {
	reg := routing.NewRegistry()
	victimAS := &routing.AS{ASN: 1, Prefixes: []netip.Prefix{netip.MustParsePrefix("20.1.0.0/16")}, DSAV: cfg.VictimDSAV}
	authAS := &routing.AS{ASN: 2, Prefixes: []netip.Prefix{netip.MustParsePrefix("20.2.0.0/16")}}
	attackAS := &routing.AS{ASN: 3, Prefixes: []netip.Prefix{netip.MustParsePrefix("20.3.0.0/16")}} // no OSAV
	for _, as := range []*routing.AS{victimAS, authAS, attackAS} {
		if err := reg.Add(as); err != nil {
			return nil, err
		}
	}
	n := netsim.New(reg, netsim.Config{Seed: cfg.Seed})

	w := &world{
		net:          n,
		victimAddr:   netip.MustParseAddr("20.1.0.53"),
		authAddr:     netip.MustParseAddr("20.2.0.53"),
		attackerAddr: netip.MustParseAddr("20.3.0.66"),
		spoofClient:  netip.MustParseAddr("20.1.7.7"), // inside the victim AS
		evilAddr:     netip.MustParseAddr("20.3.0.99"),
	}

	authHost, err := n.Attach("bank-auth", authAS, w.authAddr)
	if err != nil {
		return nil, err
	}
	soa := dnswire.SOAData{MName: "ns.bank.example", RName: "hostmaster.bank.example", Serial: 1, Minimum: 300}
	zone := authserver.NewZone("bank.example", soa)
	zone.Wildcard = true // every name resolves (Kaminsky uses random subdomains)
	w.auth, err = authserver.New(authHost, zone)
	if err != nil {
		return nil, err
	}

	victimHost, err := n.Attach("victim-resolver", victimAS, w.victimAddr)
	if err != nil {
		return nil, err
	}
	victimHost.OS = oskernel.UbuntuModern
	// Closed resolver trusting its own network: the spoofed-internal
	// trigger passes the ACL only because the border lacks DSAV.
	w.res, err = resolver.New(victimHost, []netip.Addr{w.authAddr}, resolver.Config{
		ACL:     resolver.ACL{Allowed: []netip.Prefix{netip.MustParsePrefix("20.1.0.0/16")}},
		Ports:   cfg.Ports,
		Use0x20: cfg.Victim0x20,
		Seed:    cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	// Seed the victim with the delegation so every race is a single
	// direct query to the authoritative (the realistic steady state).
	w.attacker, err = n.Attach("attacker", attackAS, w.attackerAddr, w.evilAddr)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// buildUDPRaw builds a raw spoofed datagram.
func buildUDPRaw(src, dst netip.Addr, sport, dport uint16, payload []byte) ([]byte, error) {
	return rawUDP(src, dst, sport, dport, payload)
}

// Run executes the attack.
func Run(cfg Config) (*Result, error) {
	if cfg.Races <= 0 {
		cfg.Races = 32
	}
	if cfg.ForgeriesPerRace <= 0 {
		cfg.ForgeriesPerRace = 1024
	}
	if cfg.PortGuessHi <= cfg.PortGuessLo {
		return nil, fmt.Errorf("attack: empty port guess pool")
	}
	w, err := buildWorld(cfg)
	if err != nil {
		return nil, err
	}
	rng := detrand.Rand(uint64(cfg.Seed), saltAttackRace)
	res := &Result{}

	for race := 1; race <= cfg.Races && !res.Poisoned; race++ {
		target := dnswire.Name(fmt.Sprintf("r%06d.bank.example", race))

		// 1. Trigger: spoofed-internal query induces the victim's
		//    recursive query (the §5.1 infiltration step).
		q := dnswire.NewQuery(uint16(rng.Intn(65536)), target, dnswire.TypeA)
		payload, err := q.Pack()
		if err != nil {
			return nil, err
		}
		raw, err := buildUDPRaw(w.spoofClient, w.victimAddr, 40000, 53, payload)
		if err != nil {
			return nil, err
		}
		w.attacker.SendRaw(raw)
		res.VictimQueries++

		// 2. Race: forged responses spoofing the authoritative server,
		//    spread across the round-trip window between the victim's
		//    upstream query and the genuine answer.
		for i := 0; i < cfg.ForgeriesPerRace; i++ {
			forged := dnswire.NewQuery(uint16(rng.Intn(65536)), target, dnswire.TypeA).Reply()
			forged.AA = true
			forged.Answer = []dnswire.RR{{
				Name: target, Type: dnswire.TypeA, Class: dnswire.ClassIN,
				TTL: 86400, Addr: w.evilAddr,
			}}
			fp, err := forged.Pack()
			if err != nil {
				return nil, err
			}
			guessPort := cfg.PortGuessLo
			if span := int(cfg.PortGuessHi) - int(cfg.PortGuessLo); span > 1 {
				guessPort += uint16(rng.Intn(span))
			}
			fraw, err := buildUDPRaw(w.authAddr, w.victimAddr, 53, guessPort, fp)
			if err != nil {
				return nil, err
			}
			at := 15*time.Millisecond + time.Duration(rng.Int63n(int64(25*time.Millisecond)))
			w.net.Q.After(at, func(time.Duration) { w.attacker.SendRaw(fraw) })
			res.Forgeries++
		}

		// 3. Let the race and the genuine resolution complete.
		w.net.Run()

		// 4. Check: did the victim cache the attacker's record? Query it
		//    from an allowed (spoofed-internal) client and watch where
		//    the answer points. The answer goes to the spoofed client,
		//    so inspect the cache through a second query's upstream
		//    behaviour instead: a poisoned cache answers without querying
		//    the authoritative again.
		if w.poisonedFor(target, rng) {
			res.Poisoned = true
			res.SuccessRace = race
		}
	}
	res.InducedQueries = len(w.auth.Log)
	return res, nil
}

// poisonedFor checks whether target now resolves to the attacker's
// address inside the victim's cache, using an attacker-controlled
// listener to receive the verification answer.
func (w *world) poisonedFor(target dnswire.Name, rng *rand.Rand) bool {
	// Query the victim from the attacker's own (ACL-refused) address
	// would be rejected; instead verify via a spoofed-internal query
	// whose answer we can't see — so check the authoritative log: if the
	// verification query for the same name does NOT reach the
	// authoritative server but a poisoned record exists, the cache
	// answered. To observe the answer content directly, the attacker
	// spoofs the verification query from its own prefix... which the ACL
	// refuses. The reliable in-simulation check: issue the verification
	// query spoofed-internal and diff the authoritative log length —
	// a cache hit proves the forged record was accepted (the genuine
	// record would equally be cached, but it carries a different TTL and
	// the forged answer only enters the cache if (port, ID) matched).
	before := len(w.auth.Log)
	q := dnswire.NewQuery(uint16(rng.Intn(65536)), target, dnswire.TypeA)
	payload, _ := q.Pack()
	raw, _ := buildUDPRaw(w.spoofClient, w.victimAddr, 40001, 53, payload)
	w.attacker.SendRaw(raw)
	w.net.Run()
	cacheHit := len(w.auth.Log) == before
	if !cacheHit {
		return false
	}
	// Cache hit: decide whether the cached record is the forged one.
	// The genuine wildcard answer points at 192.0.2.200 (authserver's
	// synthesized address); the forged one at evilAddr. Read it through
	// the resolver's public behaviour: spoof a query and sniff the
	// response to the spoofed client... the spoofed client is a black
	// hole, so instead consult the resolver's answer directly via a
	// (test-only) cache probe.
	rrs, ok := w.res.CachedAnswer(target, dnswire.TypeA)
	if !ok {
		return false
	}
	for _, rr := range rrs {
		if rr.Addr == w.evilAddr {
			return true
		}
	}
	return false
}
