package attack

import (
	"net/netip"
	"time"

	"repro/internal/authserver"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/oskernel"
	"repro/internal/resolver"
	"repro/internal/routing"
)

// ReflectionConfig parameterizes the DNS reflection/amplification
// attack of §1-§2: the attacker spoofs the VICTIM's address on queries
// to an open resolver, which sends its (much larger) responses to the
// victim. OSAV at the attacker's provider — not the victim's — is the
// countermeasure.
type ReflectionConfig struct {
	// Queries is the number of reflected queries.
	Queries int
	// AttackerOSAV deploys BCP 38 at the attacker's provider.
	AttackerOSAV bool
	// Seed drives randomness.
	Seed int64
}

// ReflectionResult reports the attack's traffic accounting.
type ReflectionResult struct {
	// QueryBytes is what the attacker transmitted.
	QueryBytes int
	// VictimBytes is what arrived at the victim.
	VictimBytes int
	// VictimPackets counts reflected responses.
	VictimPackets int
}

// Amplification is the bandwidth amplification factor.
func (r *ReflectionResult) Amplification() float64 {
	if r.QueryBytes == 0 {
		return 0
	}
	return float64(r.VictimBytes) / float64(r.QueryBytes)
}

// buildReflectionRegistry constructs the three-AS routing table of the
// reflection scenario. The registry is frozen once this returns
// (frozenshare enforces that all Add calls stay in build* contexts).
func buildReflectionRegistry(cfg ReflectionConfig) (*routing.Registry, *routing.AS, *routing.AS, *routing.AS, error) {
	reg := routing.NewRegistry()
	openAS := &routing.AS{ASN: 1, Prefixes: []netip.Prefix{netip.MustParsePrefix("22.1.0.0/16")}}
	victimAS := &routing.AS{ASN: 2, Prefixes: []netip.Prefix{netip.MustParsePrefix("22.2.0.0/16")}}
	attackAS := &routing.AS{ASN: 3, Prefixes: []netip.Prefix{netip.MustParsePrefix("22.3.0.0/16")},
		OSAV: cfg.AttackerOSAV}
	for _, as := range []*routing.AS{openAS, victimAS, attackAS} {
		if err := reg.Add(as); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	return reg, openAS, victimAS, attackAS, nil
}

// RunReflection executes the reflection attack end to end.
func RunReflection(cfg ReflectionConfig) (*ReflectionResult, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 50
	}
	reg, openAS, victimAS, attackAS, err := buildReflectionRegistry(cfg)
	if err != nil {
		return nil, err
	}
	n := netsim.New(reg, netsim.Config{Seed: cfg.Seed})

	// Authoritative server with a fat TXT RRset — the amplification
	// payload (the role DNSSEC records played in [44]).
	authAddr := netip.MustParseAddr("22.1.0.10")
	authHost, err := n.Attach("amp-auth", openAS, authAddr)
	if err != nil {
		return nil, err
	}
	zone := authserver.NewZone("amp.example", dnswire.SOAData{
		MName: "ns.amp.example", RName: "x.amp.example", Serial: 1, Minimum: 300,
	})
	big := make([]string, 4)
	for i := range big {
		s := make([]byte, 255)
		for j := range s {
			s[j] = 'a' + byte((i+j)%26)
		}
		big[i] = string(s)
	}
	zone.AddRecord(dnswire.RR{
		Name: "big.amp.example", Type: dnswire.TypeTXT, Class: dnswire.ClassIN,
		TTL: 3600, Txt: big,
	})
	if _, err := authserver.New(authHost, zone); err != nil {
		return nil, err
	}

	// The unwitting open resolver.
	resAddr := netip.MustParseAddr("22.1.0.53")
	resHost, err := n.Attach("open-resolver", openAS, resAddr)
	if err != nil {
		return nil, err
	}
	resHost.OS = oskernel.UbuntuModern
	if _, err := resolver.New(resHost, []netip.Addr{authAddr}, resolver.Config{
		ACL:   resolver.ACL{Open: true},
		Ports: resolver.NewUniform(oskernel.PoolLinux, newRand(cfg.Seed+1)),
		Seed:  cfg.Seed + 2,
	}); err != nil {
		return nil, err
	}

	// The victim counts what lands on it.
	victimAddr := netip.MustParseAddr("22.2.0.80")
	victimHost, err := n.Attach("victim", victimAS, victimAddr)
	if err != nil {
		return nil, err
	}
	res := &ReflectionResult{}
	const victimPort = 33333
	err = victimHost.BindUDP(victimPort, func(now time.Duration, src netip.Addr, sp uint16, dst netip.Addr, dp uint16, payload []byte) {
		res.VictimPackets++
		res.VictimBytes += len(payload)
	})
	if err != nil {
		return nil, err
	}

	attacker, err := n.Attach("attacker", attackAS, netip.MustParseAddr("22.3.0.66"))
	if err != nil {
		return nil, err
	}
	rng := newRand(cfg.Seed + 3)
	for i := 0; i < cfg.Queries; i++ {
		q := dnswire.NewQuery(uint16(rng.Intn(65536)), "big.amp.example", dnswire.TypeTXT)
		q.SetEDNS(4096) // classic amplification: raise the UDP ceiling
		payload, err := q.Pack()
		if err != nil {
			return nil, err
		}
		raw, err := rawUDP(victimAddr, resAddr, victimPort, 53, payload)
		if err != nil {
			return nil, err
		}
		res.QueryBytes += len(payload)
		i := i
		n.Q.At(time.Duration(i)*5*time.Millisecond, func(time.Duration) {
			attacker.SendRaw(raw)
		})
	}
	n.Run()
	return res, nil
}
