package attack

import (
	"net/netip"
	"time"

	"repro/internal/authserver"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/routing"
)

// ZonePoisonConfig parameterizes the DNS zone-poisoning attack
// (Korczyński et al., cited by the paper as [29]): an authoritative
// server accepts RFC 2136 dynamic updates from internal sources only,
// and a spoofed-internal UPDATE rewrites a production record.
type ZonePoisonConfig struct {
	// VictimDSAV deploys DSAV at the victim's border.
	VictimDSAV bool
	// Seed drives simulator randomness.
	Seed int64
}

// ZonePoisonResult reports the attack's outcome.
type ZonePoisonResult struct {
	// Poisoned reports whether the production record now points at the
	// attacker.
	Poisoned bool
	// OriginalAddr and FinalAddr are www's A record before and after.
	OriginalAddr, FinalAddr netip.Addr
}

// buildZonePoisonRegistry constructs the victim/attacker routing table
// of the zone-poisoning scenario; the registry is frozen once built.
func buildZonePoisonRegistry(cfg ZonePoisonConfig) (*routing.Registry, *routing.AS, *routing.AS, error) {
	reg := routing.NewRegistry()
	victimAS := &routing.AS{
		ASN: 1, Prefixes: []netip.Prefix{netip.MustParsePrefix("21.1.0.0/16")},
		DSAV: cfg.VictimDSAV,
	}
	attackAS := &routing.AS{ASN: 2, Prefixes: []netip.Prefix{netip.MustParsePrefix("21.2.0.0/16")}}
	if err := reg.Add(victimAS); err != nil {
		return nil, nil, nil, err
	}
	if err := reg.Add(attackAS); err != nil {
		return nil, nil, nil, err
	}
	return reg, victimAS, attackAS, nil
}

// RunZonePoison executes the zone-poisoning attack end to end: the
// attacker sends a spoofed-internal UPDATE deleting www's A RRset and
// inserting its own address, then the victim zone is inspected through
// a normal query.
func RunZonePoison(cfg ZonePoisonConfig) (*ZonePoisonResult, error) {
	reg, victimAS, attackAS, err := buildZonePoisonRegistry(cfg)
	if err != nil {
		return nil, err
	}
	n := netsim.New(reg, netsim.Config{Seed: cfg.Seed})

	authAddr := netip.MustParseAddr("21.1.0.53")
	wwwAddr := netip.MustParseAddr("21.1.0.80")
	evilAddr := netip.MustParseAddr("21.2.0.99")
	spoofSrc := netip.MustParseAddr("21.1.9.9") // "internal" DHCP client

	authHost, err := n.Attach("victim-auth", victimAS, authAddr)
	if err != nil {
		return nil, err
	}
	zone := authserver.NewZone("corp.example", dnswire.SOAData{
		MName: "ns.corp.example", RName: "hostmaster.corp.example", Serial: 1, Minimum: 300,
	})
	// The vulnerable configuration [29] found in the wild: dynamic
	// updates accepted from the internal network (for DHCP), no TSIG.
	zone.AllowUpdateFrom = victimAS.Prefixes
	zone.AddAddr("www.corp.example", wwwAddr, 300)
	if _, err := authserver.New(authHost, zone); err != nil {
		return nil, err
	}

	attacker, err := n.Attach("attacker", attackAS, evilAddr)
	if err != nil {
		return nil, err
	}

	// The spoofed-internal UPDATE: delete www's A RRset, add evil.
	upd := dnswire.NewUpdate(7, "corp.example")
	upd.AddUpdateDeleteRRset("www.corp.example", dnswire.TypeA)
	upd.AddUpdateRecord(dnswire.RR{
		Name: "www.corp.example", Type: dnswire.TypeA, TTL: 300, Addr: evilAddr,
	})
	payload, err := upd.Pack()
	if err != nil {
		return nil, err
	}
	raw, err := rawUDP(spoofSrc, authAddr, 40000, 53, payload)
	if err != nil {
		return nil, err
	}
	attacker.SendRaw(raw)
	n.Run()

	// Inspect the zone through a legitimate query (from the attacker's
	// real address: queries, unlike updates, are answered for anyone).
	res := &ZonePoisonResult{OriginalAddr: wwwAddr}
	q := dnswire.NewQuery(8, "www.corp.example", dnswire.TypeA)
	qp, err := q.Pack()
	if err != nil {
		return nil, err
	}
	err = attacker.BindUDP(5353, func(now time.Duration, src netip.Addr, sp uint16, dst netip.Addr, dp uint16, payload []byte) {
		m, err := dnswire.Unpack(payload)
		if err != nil || !m.QR {
			return
		}
		for _, rr := range m.Answer {
			if rr.Type == dnswire.TypeA {
				res.FinalAddr = rr.Addr
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if err := attacker.SendUDP(evilAddr, 5353, authAddr, 53, qp); err != nil {
		return nil, err
	}
	n.Run()
	res.Poisoned = res.FinalAddr == evilAddr
	return res, nil
}
