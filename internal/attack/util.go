package attack

import (
	mrand "math/rand"
	"net/netip"

	"repro/internal/detrand"
	"repro/internal/packet"
)

// rawUDP builds a raw (spoofable) UDP datagram.
func rawUDP(src, dst netip.Addr, sport, dport uint16, payload []byte) ([]byte, error) {
	return packet.BuildUDP(src, dst, sport, dport, 64, payload)
}

// newRand builds a seeded RNG for allocator construction in tests.
func newRand(seed int64) *mrand.Rand { return detrand.Rand(uint64(seed), saltAllocStartup) }
