package attack

import (
	"testing"

	"repro/internal/oskernel"
	"repro/internal/resolver"
)

func TestFixedPortResolverIsPoisonable(t *testing.T) {
	// §5.2.1: with the source port fixed and known, only the 16-bit
	// transaction ID remains; a modest flood wins within a few races.
	res, err := Run(Config{
		Ports:            &resolver.FixedPort{Port: 53},
		Races:            64,
		ForgeriesPerRace: 4096,
		PortGuessLo:      53,
		PortGuessHi:      54,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Poisoned {
		t.Fatalf("fixed-port victim survived %d races x %d forgeries", 64, 4096)
	}
	t.Logf("poisoned at race %d after %d forgeries", res.SuccessRace, res.Forgeries)
	if res.InducedQueries == 0 {
		t.Fatal("no induced recursive queries recorded")
	}
}

func TestRandomizedResolverResistsSameBudget(t *testing.T) {
	// The same forgery budget against a resolver randomizing over the
	// Linux pool: the search space grows by a factor of 28,232.
	res, err := Run(Config{
		Ports:            resolver.NewUniform(oskernel.PoolLinux, newRand(6)),
		Races:            16,
		ForgeriesPerRace: 4096,
		PortGuessLo:      oskernel.PoolLinux.Lo,
		PortGuessHi:      oskernel.PoolLinux.Hi,
		Seed:             6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Poisoned {
		t.Fatalf("randomized victim poisoned at race %d — astronomically unlikely, check the port match logic", res.SuccessRace)
	}
}

func TestDSAVStopsTheAttackEntirely(t *testing.T) {
	// The paper's remedy: with DSAV at the victim border, the spoofed
	// trigger never reaches the closed resolver, so the attacker cannot
	// induce queries at all.
	res, err := Run(Config{
		Ports:            &resolver.FixedPort{Port: 53},
		Races:            8,
		ForgeriesPerRace: 512,
		PortGuessLo:      53,
		PortGuessHi:      54,
		VictimDSAV:       true,
		Seed:             7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Poisoned {
		t.Fatal("DSAV-protected victim poisoned")
	}
	if res.InducedQueries != 0 {
		t.Fatalf("DSAV victim still induced %d queries", res.InducedQueries)
	}
}

func TestSmallPoolWeakensResistance(t *testing.T) {
	// §5.2.3's point: a small port pool multiplies the search space by
	// its size only, not by the 28,232 of a healthy pool. With the
	// guess range narrowed to the observed pool, success returns within
	// a realistic budget; three seeds bound the flake probability below
	// 0.3%.
	for _, seed := range []int64{8, 9, 10} {
		res, err := Run(Config{
			Ports:            resolver.NewUniform(oskernel.PortPool{Lo: 30000, Hi: 30002}, newRand(seed)),
			Races:            48,
			ForgeriesPerRace: 8192,
			PortGuessLo:      30000,
			PortGuessHi:      30002,
			Seed:             seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Poisoned {
			t.Logf("seed %d: small pool poisoned at race %d", seed, res.SuccessRace)
			return
		}
	}
	t.Fatal("small-pool victim survived three independent attack campaigns")
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Ports: &resolver.FixedPort{Port: 53}}); err == nil {
		t.Fatal("empty guess pool accepted")
	}
}

func Test0x20DefendsFixedPortResolver(t *testing.T) {
	// Even with a fixed, known source port, DNS 0x20 case randomization
	// adds per-letter entropy the attacker's forged responses fail to
	// echo: the budget that poisoned the plain victim now fails.
	res, err := Run(Config{
		Ports:            &resolver.FixedPort{Port: 53},
		Races:            64,
		ForgeriesPerRace: 4096,
		PortGuessLo:      53,
		PortGuessHi:      54,
		Victim0x20:       true,
		Seed:             5, // same seed that poisoned the undefended victim
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Poisoned {
		t.Fatalf("0x20 victim poisoned at race %d", res.SuccessRace)
	}
	if res.InducedQueries == 0 {
		t.Fatal("victim never resolved; 0x20 broke normal resolution")
	}
}

func TestZonePoisoningWithoutDSAV(t *testing.T) {
	// [29]: an internal-only dynamic-update policy is defeated by a
	// single spoofed-internal UPDATE when the border lacks DSAV.
	res, err := RunZonePoison(ZonePoisonConfig{Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Poisoned {
		t.Fatalf("zone not poisoned: www still %v", res.FinalAddr)
	}
	if res.FinalAddr == res.OriginalAddr {
		t.Fatal("record unchanged")
	}
}

func TestZonePoisoningBlockedByDSAV(t *testing.T) {
	res, err := RunZonePoison(ZonePoisonConfig{Seed: 21, VictimDSAV: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Poisoned {
		t.Fatal("DSAV-protected zone poisoned")
	}
	if res.FinalAddr != res.OriginalAddr {
		t.Fatalf("record changed to %v despite DSAV", res.FinalAddr)
	}
}

func TestReflectionAmplifies(t *testing.T) {
	res, err := RunReflection(ReflectionConfig{Queries: 40, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimPackets != 40 {
		t.Fatalf("victim received %d of 40 reflected responses", res.VictimPackets)
	}
	if amp := res.Amplification(); amp < 5 {
		t.Fatalf("amplification = %.1fx, want the fat-TXT payload to amplify >5x", amp)
	}
	t.Logf("amplification %.1fx (%d query bytes -> %d victim bytes)",
		res.Amplification(), res.QueryBytes, res.VictimBytes)
}

func TestReflectionStoppedByAttackerOSAV(t *testing.T) {
	// BCP 38 at the ATTACKER's provider — not the victim's — is what
	// stops reflection (§1-§2's origin-side/destination-side duality).
	res, err := RunReflection(ReflectionConfig{Queries: 20, AttackerOSAV: true, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimPackets != 0 || res.VictimBytes != 0 {
		t.Fatalf("OSAV at the origin did not stop reflection: %+v", res)
	}
}
