// Package packet implements the wire formats carried on simulated links:
// IPv4, IPv6, UDP, and TCP. The design follows the layered model used by
// gopacket: each protocol is a Layer that can decode itself from bytes
// and serialize itself into a prepend-oriented buffer, so a full packet
// is built by serializing layers from the innermost payload outward.
//
// Packets inside the simulator are real bytes. Border filters, kernels,
// and endpoints all parse the same serialized representation, so the
// code paths exercised are the ones a raw-socket implementation would
// use on a real network.
package packet

import (
	"fmt"
	"net/netip"
)

// LayerType identifies a protocol layer.
type LayerType uint8

const (
	LayerTypeNone LayerType = iota
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeUDP
	LayerTypeTCP
	LayerTypePayload
)

// String returns the conventional protocol name.
func (t LayerType) String() string {
	switch t {
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeIPv6:
		return "IPv6"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypePayload:
		return "Payload"
	default:
		return "None"
	}
}

// Layer is a decoded protocol layer.
type Layer interface {
	// LayerType identifies the protocol.
	LayerType() LayerType
	// DecodeFromBytes parses data into the receiver, replacing any
	// previous state.
	DecodeFromBytes(data []byte) error
	// NextLayerType reports the type of the layer carried in this
	// layer's payload, or LayerTypeNone if unknown/none.
	NextLayerType() LayerType
	// LayerPayload returns the bytes carried by this layer, valid after
	// DecodeFromBytes.
	LayerPayload() []byte
}

// SerializableLayer is a Layer that can write itself into a SerializeBuffer.
type SerializableLayer interface {
	Layer
	// SerializeTo prepends the layer onto b. The current contents of b
	// are treated as this layer's payload (so lengths and checksums can
	// be computed).
	SerializeTo(b *SerializeBuffer) error
}

// IP protocol numbers used by the simulator.
const (
	IPProtoTCP = 6
	IPProtoUDP = 17
)

// SerializeBuffer builds packets by prepending. It mirrors gopacket's
// SerializeBuffer: serialize the payload first, then each header from the
// innermost outward; each SerializeTo call prepends its header bytes.
type SerializeBuffer struct {
	data  []byte // window within backing
	start int    // offset of data[0] within backing
	back  []byte
}

// NewSerializeBuffer returns a buffer with room for typical headers.
func NewSerializeBuffer() *SerializeBuffer {
	const prepend = 128
	b := &SerializeBuffer{back: make([]byte, prepend, prepend+512)}
	b.start = prepend
	b.data = b.back[prepend:prepend]
	return b
}

// Bytes returns the current packet contents. The slice is invalidated by
// further Prepend/Append calls.
func (b *SerializeBuffer) Bytes() []byte { return b.data }

// Len reports the current packet length.
func (b *SerializeBuffer) Len() int { return len(b.data) }

// Clear resets the buffer to empty, retaining backing storage.
func (b *SerializeBuffer) Clear() {
	b.start = len(b.back)
	if b.start == 0 {
		b.back = make([]byte, 128)
		b.start = 128
	}
	b.data = b.back[b.start:b.start]
}

// PrependBytes returns a slice of n fresh bytes at the front of the packet.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if n < 0 {
		panic("packet: negative prepend")
	}
	if b.start < n {
		// Grow headroom.
		grow := n - b.start + 128
		nb := make([]byte, len(b.back)+grow)
		copy(nb[grow:], b.back)
		b.back = nb
		b.start += grow
	}
	b.start -= n
	b.data = b.back[b.start : b.start+n+len(b.data)]
	return b.data[:n]
}

// AppendBytes returns a slice of n fresh bytes at the end of the packet.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	if n < 0 {
		panic("packet: negative append")
	}
	end := b.start + len(b.data)
	if end+n > len(b.back) {
		nb := make([]byte, end+n+256)
		copy(nb, b.back)
		b.back = nb
	}
	b.back = b.back[:cap(b.back)]
	b.data = b.back[b.start : end+n]
	return b.data[len(b.data)-n:]
}

// Serialize writes layers (outermost first) around the given payload and
// returns the packet bytes. It is the convenience entry point used by
// endpoints: Serialize(payload, udp, ip) produces ip(udp(payload)).
func Serialize(payload []byte, layers ...SerializableLayer) ([]byte, error) {
	b := NewSerializeBuffer()
	if len(payload) > 0 {
		copy(b.AppendBytes(len(payload)), payload)
	}
	for _, l := range layers {
		if err := l.SerializeTo(b); err != nil {
			return nil, err
		}
	}
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	return out, nil
}

// Payload is a raw application payload layer.
type Payload []byte

// LayerType implements Layer.
func (p *Payload) LayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements Layer.
func (p *Payload) DecodeFromBytes(data []byte) error {
	*p = append((*p)[:0], data...)
	return nil
}

// NextLayerType implements Layer.
func (p *Payload) NextLayerType() LayerType { return LayerTypeNone }

// LayerPayload implements Layer.
func (p *Payload) LayerPayload() []byte { return nil }

// SerializeTo implements SerializableLayer.
func (p *Payload) SerializeTo(b *SerializeBuffer) error {
	copy(b.PrependBytes(len(*p)), *p)
	return nil
}

// addrIs4 reports whether a is a plain IPv4 address (not 4-in-6).
func addrIs4(a netip.Addr) bool { return a.Is4() }

// DecodeError reports a malformed packet.
type DecodeError struct {
	Layer  LayerType
	Reason string
}

// Error implements error.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("packet: bad %s: %s", e.Layer, e.Reason)
}

func decodeErr(t LayerType, reason string) error {
	return &DecodeError{Layer: t, Reason: reason}
}
