package packet

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	v4a = netip.MustParseAddr("192.0.2.1")
	v4b = netip.MustParseAddr("198.51.100.7")
	v6a = netip.MustParseAddr("2001:db8::1")
	v6b = netip.MustParseAddr("2001:db8:ffff::53")
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 §3.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// An odd final byte is padded with zero on the right.
	even := []byte{0xab, 0x00}
	odd := []byte{0xab}
	if Checksum(even) != Checksum(odd) {
		t.Fatal("odd-length checksum must equal zero-padded even-length checksum")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := &IPv4{TOS: 0x10, ID: 0x1234, DontFrag: true, TTL: 61, Protocol: IPProtoUDP, Src: v4a, Dst: v4b}
	payload := []byte("hello world")
	raw, err := Serialize(payload, ip)
	if err != nil {
		t.Fatal(err)
	}
	var got IPv4
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Src != v4a || got.Dst != v4b || got.TTL != 61 || got.ID != 0x1234 || !got.DontFrag || got.TOS != 0x10 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !bytes.Equal(got.LayerPayload(), payload) {
		t.Fatalf("payload = %q", got.LayerPayload())
	}
}

func TestIPv4ChecksumVerified(t *testing.T) {
	ip := &IPv4{TTL: 64, Protocol: IPProtoUDP, Src: v4a, Dst: v4b}
	raw, err := Serialize([]byte("x"), ip)
	if err != nil {
		t.Fatal(err)
	}
	raw[8] ^= 0xff // corrupt TTL
	var got IPv4
	if err := got.DecodeFromBytes(raw); err == nil {
		t.Fatal("corrupted IPv4 header accepted")
	}
}

func TestIPv4RejectsV6Addrs(t *testing.T) {
	ip := &IPv4{TTL: 64, Protocol: IPProtoUDP, Src: v6a, Dst: v4b}
	if _, err := Serialize(nil, ip); err == nil {
		t.Fatal("IPv4 serialize with IPv6 source should fail")
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	ip := &IPv6{TrafficClass: 0x20, FlowLabel: 0xabcde, NextHeader: IPProtoTCP, HopLimit: 58, Src: v6a, Dst: v6b}
	payload := []byte{1, 2, 3, 4, 5}
	raw, err := Serialize(payload, ip)
	if err != nil {
		t.Fatal(err)
	}
	var got IPv6
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Src != v6a || got.Dst != v6b || got.HopLimit != 58 || got.FlowLabel != 0xabcde || got.TrafficClass != 0x20 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !bytes.Equal(got.LayerPayload(), payload) {
		t.Fatalf("payload = %v", got.LayerPayload())
	}
}

func TestUDPRoundTripV4(t *testing.T) {
	raw, err := BuildUDP(v4a, v4b, 40000, 53, 64, []byte("dns query bytes"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.UDP == nil || p.IsIPv6() {
		t.Fatal("expected IPv4 UDP packet")
	}
	if p.SrcPort() != 40000 || p.DstPort() != 53 {
		t.Fatalf("ports = %d->%d", p.SrcPort(), p.DstPort())
	}
	if string(p.Data) != "dns query bytes" {
		t.Fatalf("payload = %q", p.Data)
	}
}

func TestUDPRoundTripV6(t *testing.T) {
	raw, err := BuildUDP(v6a, v6b, 1024, 53, 64, []byte("v6 payload"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.UDP == nil || !p.IsIPv6() {
		t.Fatal("expected IPv6 UDP packet")
	}
	if p.Src() != v6a || p.Dst() != v6b {
		t.Fatalf("addrs = %v -> %v", p.Src(), p.Dst())
	}
}

func TestUDPChecksumVerified(t *testing.T) {
	raw, err := BuildUDP(v4a, v4b, 1, 2, 64, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // corrupt payload: transport checksum must catch it
	if _, err := Decode(raw); err == nil {
		t.Fatal("corrupted UDP payload accepted")
	}
}

func TestUDPMixedFamiliesRejected(t *testing.T) {
	if _, err := BuildUDP(v4a, v6b, 1, 2, 64, nil); err == nil {
		t.Fatal("mixed address families accepted")
	}
}

func TestTCPRoundTripWithOptions(t *testing.T) {
	tcp := &TCP{
		SrcPort: 55555, DstPort: 53, Seq: 0xdeadbeef, SYN: true, Window: 29200,
		Options: []TCPOption{
			{Kind: TCPOptMSS, Data: []byte{0x05, 0xb4}},
			{Kind: TCPOptSACKPermit},
			{Kind: TCPOptTimestamps, Data: make([]byte, 8)},
			{Kind: TCPOptNop},
			{Kind: TCPOptWindowScale, Data: []byte{7}},
		},
	}
	raw, err := BuildTCP(v4a, v4b, tcp, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.TCP == nil {
		t.Fatal("no TCP layer")
	}
	if !p.TCP.SYN || p.TCP.ACK {
		t.Fatalf("flags wrong: %+v", p.TCP)
	}
	if mss, ok := p.TCP.MSS(); !ok || mss != 1460 {
		t.Fatalf("MSS = %d, %v", mss, ok)
	}
	if ws, ok := p.TCP.WindowScale(); !ok || ws != 7 {
		t.Fatalf("window scale = %d, %v", ws, ok)
	}
	if p.TCP.Window != 29200 || p.TCP.Seq != 0xdeadbeef {
		t.Fatalf("header mismatch: %+v", p.TCP)
	}
}

func TestTCPChecksumVerified(t *testing.T) {
	tcp := &TCP{SrcPort: 1, DstPort: 2, SYN: true, Window: 100}
	raw, err := BuildTCP(v6a, v6b, tcp, 64, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	raw[45] ^= 0x01
	if _, err := Decode(raw); err == nil {
		t.Fatal("corrupted TCP segment accepted")
	}
}

func TestTCPFlagsRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		in := &TCP{SrcPort: 9, DstPort: 10, Window: 1}
		in.FIN = i&1 != 0
		in.SYN = i&2 != 0
		in.RST = i&4 != 0
		in.PSH = i&8 != 0
		in.ACK = i&16 != 0
		in.URG = i&32 != 0
		raw, err := BuildTCP(v4a, v4b, in, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		out := p.TCP
		if out.FIN != in.FIN || out.SYN != in.SYN || out.RST != in.RST ||
			out.PSH != in.PSH || out.ACK != in.ACK || out.URG != in.URG {
			t.Fatalf("flag combination %d did not round-trip", i)
		}
	}
}

func TestSerializeBufferPrependGrowth(t *testing.T) {
	b := NewSerializeBuffer()
	copy(b.AppendBytes(4), "tail")
	total := 4
	for i := 0; i < 50; i++ {
		n := 17
		p := b.PrependBytes(n)
		for j := range p {
			p[j] = byte(i)
		}
		total += n
		if b.Len() != total {
			t.Fatalf("len = %d, want %d", b.Len(), total)
		}
	}
	if string(b.Bytes()[b.Len()-4:]) != "tail" {
		t.Fatal("tail bytes corrupted by prepend growth")
	}
}

func TestSerializeBufferClear(t *testing.T) {
	b := NewSerializeBuffer()
	copy(b.AppendBytes(10), "0123456789")
	b.Clear()
	if b.Len() != 0 {
		t.Fatalf("len after Clear = %d", b.Len())
	}
	copy(b.PrependBytes(3), "abc")
	if string(b.Bytes()) != "abc" {
		t.Fatalf("bytes = %q", b.Bytes())
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, raw := range [][]byte{nil, {0x00}, {0x50, 1, 2}, bytes.Repeat([]byte{0xff}, 40)} {
		if _, err := Decode(raw); err == nil {
			t.Fatalf("garbage %v decoded without error", raw)
		}
	}
}

// quickAddr4 derives a deterministic IPv4 address from a seed.
func quickAddr4(seed uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], seed|0x01000000) // avoid 0.x
	return netip.AddrFrom4(b)
}

func quickAddr6(seed uint64) netip.Addr {
	var b [16]byte
	b[0] = 0x20
	b[1] = 0x01
	binary.BigEndian.PutUint64(b[8:], seed)
	return netip.AddrFrom16(b)
}

func TestQuickUDPv4RoundTrip(t *testing.T) {
	f := func(srcSeed, dstSeed uint32, sp, dp uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		src, dst := quickAddr4(srcSeed), quickAddr4(dstSeed)
		raw, err := BuildUDP(src, dst, sp, dp, 64, payload)
		if err != nil {
			return false
		}
		p, err := Decode(raw)
		if err != nil {
			return false
		}
		return p.Src() == src && p.Dst() == dst &&
			p.SrcPort() == sp && p.DstPort() == dp &&
			bytes.Equal(p.Data, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUDPv6RoundTrip(t *testing.T) {
	f := func(srcSeed, dstSeed uint64, sp, dp uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		src, dst := quickAddr6(srcSeed), quickAddr6(dstSeed)
		raw, err := BuildUDP(src, dst, sp, dp, 64, payload)
		if err != nil {
			return false
		}
		p, err := Decode(raw)
		if err != nil {
			return false
		}
		return p.Src() == src && p.Dst() == dst && bytes.Equal(p.Data, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChecksumBitFlipDetected(t *testing.T) {
	// Property: any single bit flip in a UDP packet is detected by either
	// the IP header checksum or the transport checksum.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		payload := make([]byte, 1+rng.Intn(100))
		rng.Read(payload)
		raw, err := BuildUDP(v4a, v4b, uint16(rng.Intn(65536)), 53, 64, payload)
		if err != nil {
			t.Fatal(err)
		}
		bit := rng.Intn(len(raw) * 8)
		raw[bit/8] ^= 1 << (bit % 8)
		if p, err := Decode(raw); err == nil {
			// A flip inside the checksum fields themselves also must fail
			// verification; anywhere else certainly must.
			t.Fatalf("bit flip at %d undetected (decoded %+v)", bit, p)
		}
	}
}

func BenchmarkBuildUDPv4(b *testing.B) {
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildUDP(v4a, v4b, 40000, 53, 64, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeUDPv4(b *testing.B) {
	raw, _ := BuildUDP(v4a, v4b, 40000, 53, 64, make([]byte, 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
