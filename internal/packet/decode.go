package packet

import "net/netip"

// Packet is a fully decoded IP datagram as seen on a simulated link.
type Packet struct {
	// Exactly one of V4/V6 is non-nil.
	V4 *IPv4
	V6 *IPv6
	// Exactly one of UDP/TCP is non-nil for transport datagrams the
	// simulator understands; both nil means an unknown protocol.
	UDP *UDP
	TCP *TCP
	// Data is the transport payload.
	Data []byte
	// Raw is the original wire representation.
	Raw []byte
}

// Src returns the network-layer source address.
func (p *Packet) Src() netip.Addr {
	if p.V4 != nil {
		return p.V4.Src
	}
	return p.V6.Src
}

// Dst returns the network-layer destination address.
func (p *Packet) Dst() netip.Addr {
	if p.V4 != nil {
		return p.V4.Dst
	}
	return p.V6.Dst
}

// IsIPv6 reports whether the packet is IPv6.
func (p *Packet) IsIPv6() bool { return p.V6 != nil }

// SrcPort returns the transport source port (0 if no transport layer).
func (p *Packet) SrcPort() uint16 {
	switch {
	case p.UDP != nil:
		return p.UDP.SrcPort
	case p.TCP != nil:
		return p.TCP.SrcPort
	}
	return 0
}

// DstPort returns the transport destination port (0 if no transport layer).
func (p *Packet) DstPort() uint16 {
	switch {
	case p.UDP != nil:
		return p.UDP.DstPort
	case p.TCP != nil:
		return p.TCP.DstPort
	}
	return 0
}

// Decode parses a wire-format datagram, sniffing the IP version from the
// first nibble. Transport checksums are verified against the IP
// pseudo-header.
func Decode(raw []byte) (*Packet, error) {
	if len(raw) == 0 {
		return nil, decodeErr(LayerTypeNone, "empty packet")
	}
	p := &Packet{Raw: raw}
	var (
		next    LayerType
		payload []byte
		src     netip.Addr
		dst     netip.Addr
	)
	switch raw[0] >> 4 {
	case 4:
		p.V4 = new(IPv4)
		if err := p.V4.DecodeFromBytes(raw); err != nil {
			return nil, err
		}
		next, payload = p.V4.NextLayerType(), p.V4.LayerPayload()
		src, dst = p.V4.Src, p.V4.Dst
	case 6:
		p.V6 = new(IPv6)
		if err := p.V6.DecodeFromBytes(raw); err != nil {
			return nil, err
		}
		next, payload = p.V6.NextLayerType(), p.V6.LayerPayload()
		src, dst = p.V6.Src, p.V6.Dst
	default:
		return nil, decodeErr(LayerTypeNone, "unknown IP version")
	}
	switch next {
	case LayerTypeUDP:
		p.UDP = new(UDP)
		p.UDP.SetNetwork(src, dst)
		if err := p.UDP.DecodeFromBytes(payload); err != nil {
			return nil, err
		}
		p.Data = p.UDP.LayerPayload()
	case LayerTypeTCP:
		p.TCP = new(TCP)
		p.TCP.SetNetwork(src, dst)
		if err := p.TCP.DecodeFromBytes(payload); err != nil {
			return nil, err
		}
		p.Data = p.TCP.LayerPayload()
	}
	return p, nil
}

// BuildUDP serializes a UDP datagram inside the appropriate IP version for
// the given addresses. ttl is used as the IPv4 TTL or IPv6 hop limit.
func BuildUDP(src, dst netip.Addr, srcPort, dstPort uint16, ttl uint8, payload []byte) ([]byte, error) {
	udp := &UDP{SrcPort: srcPort, DstPort: dstPort}
	udp.SetNetwork(src, dst)
	if addrIs4(src) && addrIs4(dst) {
		ip := &IPv4{TTL: ttl, Protocol: IPProtoUDP, Src: src, Dst: dst, DontFrag: true}
		return Serialize(payload, udp, ip)
	}
	if addrIs4(src) || addrIs4(dst) {
		return nil, decodeErr(LayerTypeNone, "mixed address families")
	}
	ip := &IPv6{NextHeader: IPProtoUDP, HopLimit: ttl, Src: src, Dst: dst}
	return Serialize(payload, udp, ip)
}

// BuildTCP serializes a TCP segment inside the appropriate IP version.
func BuildTCP(src, dst netip.Addr, tcp *TCP, ttl uint8, payload []byte) ([]byte, error) {
	tcp.SetNetwork(src, dst)
	if addrIs4(src) && addrIs4(dst) {
		ip := &IPv4{TTL: ttl, Protocol: IPProtoTCP, Src: src, Dst: dst, DontFrag: true}
		return Serialize(payload, tcp, ip)
	}
	if addrIs4(src) || addrIs4(dst) {
		return nil, decodeErr(LayerTypeNone, "mixed address families")
	}
	ip := &IPv6{NextHeader: IPProtoTCP, HopLimit: ttl, Src: src, Dst: dst}
	return Serialize(payload, tcp, ip)
}
