package packet

import (
	"encoding/binary"
	"net/netip"
)

// IPv4 is an IPv4 header (RFC 791). Options are not modeled; IHL is
// always 5 on serialization and options are skipped on decode.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	DontFrag bool
	TTL      uint8
	Protocol uint8
	Src, Dst netip.Addr

	payload []byte
}

const ipv4MinLen = 20

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// NextLayerType implements Layer.
func (ip *IPv4) NextLayerType() LayerType {
	switch ip.Protocol {
	case IPProtoUDP:
		return LayerTypeUDP
	case IPProtoTCP:
		return LayerTypeTCP
	default:
		return LayerTypeNone
	}
}

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// DecodeFromBytes implements Layer. The header checksum is verified.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < ipv4MinLen {
		return decodeErr(LayerTypeIPv4, "truncated header")
	}
	if v := data[0] >> 4; v != 4 {
		return decodeErr(LayerTypeIPv4, "version is not 4")
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < ipv4MinLen || ihl > len(data) {
		return decodeErr(LayerTypeIPv4, "bad IHL")
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < ihl || total > len(data) {
		return decodeErr(LayerTypeIPv4, "bad total length")
	}
	if Checksum(data[:ihl]) != 0 {
		return decodeErr(LayerTypeIPv4, "header checksum mismatch")
	}
	ip.TOS = data[1]
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	flags := binary.BigEndian.Uint16(data[6:8])
	ip.DontFrag = flags&0x4000 != 0
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	ip.payload = data[ihl:total]
	return nil
}

// SerializeTo implements SerializableLayer, computing total length and
// header checksum from the buffer contents.
func (ip *IPv4) SerializeTo(b *SerializeBuffer) error {
	if !addrIs4(ip.Src) || !addrIs4(ip.Dst) {
		return decodeErr(LayerTypeIPv4, "src/dst are not IPv4 addresses")
	}
	payloadLen := b.Len()
	hdr := b.PrependBytes(ipv4MinLen)
	hdr[0] = 4<<4 | 5
	hdr[1] = ip.TOS
	binary.BigEndian.PutUint16(hdr[2:4], uint16(ipv4MinLen+payloadLen))
	binary.BigEndian.PutUint16(hdr[4:6], ip.ID)
	var flags uint16
	if ip.DontFrag {
		flags |= 0x4000
	}
	binary.BigEndian.PutUint16(hdr[6:8], flags)
	hdr[8] = ip.TTL
	hdr[9] = ip.Protocol
	hdr[10], hdr[11] = 0, 0
	src4, dst4 := ip.Src.As4(), ip.Dst.As4()
	copy(hdr[12:16], src4[:])
	copy(hdr[16:20], dst4[:])
	binary.BigEndian.PutUint16(hdr[10:12], Checksum(hdr))
	return nil
}
