package packet

import (
	"encoding/binary"
	"net/netip"
)

// UDP is a UDP header (RFC 768). For checksum computation on serialize
// and verification on decode, the network-layer addresses must be
// supplied via SetNetwork (mirroring gopacket's
// SetNetworkLayerForChecksum).
type UDP struct {
	SrcPort, DstPort uint16

	src, dst netip.Addr
	payload  []byte
}

const udpHeaderLen = 8

// SetNetwork records the pseudo-header addresses used for checksums.
func (u *UDP) SetNetwork(src, dst netip.Addr) { u.src, u.dst = src, dst }

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// NextLayerType implements Layer.
func (u *UDP) NextLayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// DecodeFromBytes implements Layer. If SetNetwork was called beforehand,
// the checksum is verified.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < udpHeaderLen {
		return decodeErr(LayerTypeUDP, "truncated header")
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	length := int(binary.BigEndian.Uint16(data[4:6]))
	if length < udpHeaderLen || length > len(data) {
		return decodeErr(LayerTypeUDP, "bad length")
	}
	sum := binary.BigEndian.Uint16(data[6:8])
	if sum != 0 && u.src.IsValid() && u.dst.IsValid() {
		seg := make([]byte, length)
		copy(seg, data[:length])
		seg[6], seg[7] = 0, 0
		if got := TransportChecksum(u.src, u.dst, IPProtoUDP, seg); got != sum {
			return decodeErr(LayerTypeUDP, "checksum mismatch")
		}
	}
	u.payload = data[udpHeaderLen:length]
	return nil
}

// SerializeTo implements SerializableLayer. SetNetwork must have been
// called so the checksum can be computed.
func (u *UDP) SerializeTo(b *SerializeBuffer) error {
	if !u.src.IsValid() || !u.dst.IsValid() {
		return decodeErr(LayerTypeUDP, "SetNetwork not called before serialize")
	}
	length := udpHeaderLen + b.Len()
	if length > 0xffff {
		return decodeErr(LayerTypeUDP, "datagram too long")
	}
	hdr := b.PrependBytes(udpHeaderLen)
	binary.BigEndian.PutUint16(hdr[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], u.DstPort)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(length))
	hdr[6], hdr[7] = 0, 0
	sum := TransportChecksum(u.src, u.dst, IPProtoUDP, b.Bytes())
	if sum == 0 {
		sum = 0xffff // RFC 768: transmitted as all ones
	}
	binary.BigEndian.PutUint16(hdr[6:8], sum)
	return nil
}
