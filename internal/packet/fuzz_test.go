package packet

import (
	"bytes"
	"net/netip"
	"testing"
)

// FuzzDecode asserts the datagram parser's safety properties on
// arbitrary bytes: Decode never panics; an accepted packet has exactly
// one network and at most one transport layer, valid addresses, and
// decodes identically a second time (acceptance is deterministic and
// Raw preserves the input).
func FuzzDecode(f *testing.F) {
	v4a, v4b := netip.MustParseAddr("203.0.113.5"), netip.MustParseAddr("198.51.100.9")
	v6a, v6b := netip.MustParseAddr("2001:db8::5"), netip.MustParseAddr("2001:db8::9")

	udp4, err := BuildUDP(v4a, v4b, 40000, 53, 64, []byte("\x12\x34\x01\x00\x00\x01payload"))
	if err != nil {
		f.Fatal(err)
	}
	udp6, err := BuildUDP(v6a, v6b, 53, 53, 255, []byte("dns"))
	if err != nil {
		f.Fatal(err)
	}
	syn := &TCP{SrcPort: 1234, DstPort: 53, Seq: 0xdeadbeef, SYN: true, Window: 16384,
		Options: []TCPOption{{Kind: TCPOptMSS, Data: []byte{0x05, 0xb4}}, {Kind: TCPOptSACKPermit}}}
	tcp4, err := BuildTCP(v4a, v4b, syn, 128, nil)
	if err != nil {
		f.Fatal(err)
	}
	psh := &TCP{SrcPort: 53, DstPort: 1234, Seq: 7, Ack: 9, ACK: true, PSH: true, Window: 65535}
	tcp6, err := BuildTCP(v6a, v6b, psh, 64, []byte("\x00\x03abc"))
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range [][]byte{udp4, udp6, tcp4, tcp6, udp4[:20], {0x45}, {0x60}, nil} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		if (p.V4 == nil) == (p.V6 == nil) {
			t.Fatalf("accepted packet must have exactly one IP layer: %+v", p)
		}
		if p.UDP != nil && p.TCP != nil {
			t.Fatalf("accepted packet has two transport layers")
		}
		if !p.Src().IsValid() || !p.Dst().IsValid() {
			t.Fatalf("accepted packet has invalid addresses: %v -> %v", p.Src(), p.Dst())
		}
		if !bytes.Equal(p.Raw, data) {
			t.Fatalf("Raw does not preserve input")
		}
		p2, err := Decode(p.Raw)
		if err != nil {
			t.Fatalf("re-decode of accepted packet rejected: %v", err)
		}
		if p2.Src() != p.Src() || p2.Dst() != p.Dst() ||
			p2.SrcPort() != p.SrcPort() || p2.DstPort() != p.DstPort() {
			t.Fatalf("re-decode disagrees: %v:%d->%v:%d vs %v:%d->%v:%d",
				p.Src(), p.SrcPort(), p.Dst(), p.DstPort(),
				p2.Src(), p2.SrcPort(), p2.Dst(), p2.DstPort())
		}
		if !bytes.Equal(p2.Data, p.Data) {
			t.Fatalf("re-decode payload disagrees")
		}
	})
}
