package packet

import (
	"encoding/binary"
	"net/netip"
)

// TCPOptionKind identifies a TCP option.
type TCPOptionKind uint8

// TCP option kinds used by the OS fingerprinting models.
const (
	TCPOptEndOfOptions TCPOptionKind = 0
	TCPOptNop          TCPOptionKind = 1
	TCPOptMSS          TCPOptionKind = 2
	TCPOptWindowScale  TCPOptionKind = 3
	TCPOptSACKPermit   TCPOptionKind = 4
	TCPOptTimestamps   TCPOptionKind = 8
)

// TCPOption is a single TCP option as it appears on the wire.
type TCPOption struct {
	Kind TCPOptionKind
	Data []byte // option data, excluding kind and length bytes
}

// TCP is a TCP header (RFC 793) with options. Like UDP, SetNetwork must
// be called before serializing or verifying checksums.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	SYN, ACK, FIN    bool
	RST, PSH, URG    bool
	Window           uint16
	Options          []TCPOption

	src, dst netip.Addr
	payload  []byte
}

const tcpMinLen = 20

// SetNetwork records the pseudo-header addresses used for checksums.
func (t *TCP) SetNetwork(src, dst netip.Addr) { t.src, t.dst = src, dst }

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// NextLayerType implements Layer.
func (t *TCP) NextLayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// Option returns the first option of the given kind and whether it exists.
func (t *TCP) Option(kind TCPOptionKind) (TCPOption, bool) {
	for _, o := range t.Options {
		if o.Kind == kind {
			return o, true
		}
	}
	return TCPOption{}, false
}

// MSS returns the maximum-segment-size option value, if present.
func (t *TCP) MSS() (uint16, bool) {
	o, ok := t.Option(TCPOptMSS)
	if !ok || len(o.Data) != 2 {
		return 0, false
	}
	return binary.BigEndian.Uint16(o.Data), true
}

// WindowScale returns the window-scale option value, if present.
func (t *TCP) WindowScale() (uint8, bool) {
	o, ok := t.Option(TCPOptWindowScale)
	if !ok || len(o.Data) != 1 {
		return 0, false
	}
	return o.Data[0], true
}

func (t *TCP) flags() uint8 {
	var f uint8
	if t.FIN {
		f |= 0x01
	}
	if t.SYN {
		f |= 0x02
	}
	if t.RST {
		f |= 0x04
	}
	if t.PSH {
		f |= 0x08
	}
	if t.ACK {
		f |= 0x10
	}
	if t.URG {
		f |= 0x20
	}
	return f
}

func (t *TCP) setFlags(f uint8) {
	t.FIN = f&0x01 != 0
	t.SYN = f&0x02 != 0
	t.RST = f&0x04 != 0
	t.PSH = f&0x08 != 0
	t.ACK = f&0x10 != 0
	t.URG = f&0x20 != 0
}

// DecodeFromBytes implements Layer. If SetNetwork was called beforehand,
// the checksum is verified.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < tcpMinLen {
		return decodeErr(LayerTypeTCP, "truncated header")
	}
	dataOff := int(data[12]>>4) * 4
	if dataOff < tcpMinLen || dataOff > len(data) {
		return decodeErr(LayerTypeTCP, "bad data offset")
	}
	if t.src.IsValid() && t.dst.IsValid() {
		seg := make([]byte, len(data))
		copy(seg, data)
		seg[16], seg[17] = 0, 0
		want := binary.BigEndian.Uint16(data[16:18])
		if got := TransportChecksum(t.src, t.dst, IPProtoTCP, seg); got != want {
			return decodeErr(LayerTypeTCP, "checksum mismatch")
		}
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.setFlags(data[13])
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Options = t.Options[:0]
	opts := data[tcpMinLen:dataOff]
	for len(opts) > 0 {
		kind := TCPOptionKind(opts[0])
		switch kind {
		case TCPOptEndOfOptions:
			opts = nil
		case TCPOptNop:
			t.Options = append(t.Options, TCPOption{Kind: kind})
			opts = opts[1:]
		default:
			if len(opts) < 2 {
				return decodeErr(LayerTypeTCP, "truncated option")
			}
			olen := int(opts[1])
			if olen < 2 || olen > len(opts) {
				return decodeErr(LayerTypeTCP, "bad option length")
			}
			t.Options = append(t.Options, TCPOption{
				Kind: kind,
				Data: append([]byte(nil), opts[2:olen]...),
			})
			opts = opts[olen:]
		}
	}
	t.payload = data[dataOff:]
	return nil
}

// SerializeTo implements SerializableLayer.
func (t *TCP) SerializeTo(b *SerializeBuffer) error {
	if !t.src.IsValid() || !t.dst.IsValid() {
		return decodeErr(LayerTypeTCP, "SetNetwork not called before serialize")
	}
	optLen := 0
	for _, o := range t.Options {
		if o.Kind == TCPOptNop || o.Kind == TCPOptEndOfOptions {
			optLen++
		} else {
			optLen += 2 + len(o.Data)
		}
	}
	pad := (4 - optLen%4) % 4
	hdrLen := tcpMinLen + optLen + pad
	if hdrLen > 60 {
		return decodeErr(LayerTypeTCP, "options too long")
	}
	hdr := b.PrependBytes(hdrLen)
	binary.BigEndian.PutUint16(hdr[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], t.DstPort)
	binary.BigEndian.PutUint32(hdr[4:8], t.Seq)
	binary.BigEndian.PutUint32(hdr[8:12], t.Ack)
	hdr[12] = uint8(hdrLen/4) << 4
	hdr[13] = t.flags()
	binary.BigEndian.PutUint16(hdr[14:16], t.Window)
	hdr[16], hdr[17] = 0, 0
	hdr[18], hdr[19] = 0, 0 // urgent pointer unused
	p := hdr[tcpMinLen:]
	for _, o := range t.Options {
		switch o.Kind {
		case TCPOptNop, TCPOptEndOfOptions:
			p[0] = byte(o.Kind)
			p = p[1:]
		default:
			p[0] = byte(o.Kind)
			p[1] = byte(2 + len(o.Data))
			copy(p[2:], o.Data)
			p = p[2+len(o.Data):]
		}
	}
	for i := range p {
		p[i] = 0 // pad with end-of-options
	}
	sum := TransportChecksum(t.src, t.dst, IPProtoTCP, b.Bytes())
	binary.BigEndian.PutUint16(hdr[16:18], sum)
	return nil
}
