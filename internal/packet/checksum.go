package packet

import (
	"encoding/binary"
	"net/netip"
)

// onesSum accumulates data into a ones'-complement running sum.
func onesSum(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

// foldSum folds a ones'-complement running sum into a 16-bit checksum.
func foldSum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Checksum computes the Internet checksum (RFC 1071) of data.
func Checksum(data []byte) uint16 { return foldSum(onesSum(0, data)) }

// pseudoHeaderSum computes the ones'-complement sum of the IPv4 or IPv6
// pseudo-header used by UDP and TCP checksums.
func pseudoHeaderSum(src, dst netip.Addr, proto uint8, length int) uint32 {
	var sum uint32
	if addrIs4(src) && addrIs4(dst) {
		s4, d4 := src.As4(), dst.As4()
		sum = onesSum(sum, s4[:])
		sum = onesSum(sum, d4[:])
		sum += uint32(proto)
		sum += uint32(length)
		return sum
	}
	s16, d16 := src.As16(), dst.As16()
	sum = onesSum(sum, s16[:])
	sum = onesSum(sum, d16[:])
	sum += uint32(length)
	sum += uint32(proto)
	return sum
}

// TransportChecksum computes the UDP/TCP checksum over the pseudo-header
// and segment. segment must already have its checksum field zeroed.
func TransportChecksum(src, dst netip.Addr, proto uint8, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	return foldSum(onesSum(sum, segment))
}
