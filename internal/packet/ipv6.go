package packet

import (
	"encoding/binary"
	"net/netip"
)

// IPv6 is an IPv6 fixed header (RFC 8200). Extension headers are not
// modeled; NextHeader is the transport protocol directly.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     netip.Addr

	payload []byte
}

const ipv6HeaderLen = 40

// LayerType implements Layer.
func (ip *IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// NextLayerType implements Layer.
func (ip *IPv6) NextLayerType() LayerType {
	switch ip.NextHeader {
	case IPProtoUDP:
		return LayerTypeUDP
	case IPProtoTCP:
		return LayerTypeTCP
	default:
		return LayerTypeNone
	}
}

// LayerPayload implements Layer.
func (ip *IPv6) LayerPayload() []byte { return ip.payload }

// DecodeFromBytes implements Layer.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < ipv6HeaderLen {
		return decodeErr(LayerTypeIPv6, "truncated header")
	}
	if v := data[0] >> 4; v != 6 {
		return decodeErr(LayerTypeIPv6, "version is not 6")
	}
	vtf := binary.BigEndian.Uint32(data[0:4])
	ip.TrafficClass = uint8(vtf >> 20)
	ip.FlowLabel = vtf & 0xfffff
	plen := int(binary.BigEndian.Uint16(data[4:6]))
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	ip.Src = netip.AddrFrom16([16]byte(data[8:24]))
	ip.Dst = netip.AddrFrom16([16]byte(data[24:40]))
	if ipv6HeaderLen+plen > len(data) {
		return decodeErr(LayerTypeIPv6, "bad payload length")
	}
	ip.payload = data[ipv6HeaderLen : ipv6HeaderLen+plen]
	return nil
}

// SerializeTo implements SerializableLayer.
func (ip *IPv6) SerializeTo(b *SerializeBuffer) error {
	if addrIs4(ip.Src) || addrIs4(ip.Dst) {
		return decodeErr(LayerTypeIPv6, "src/dst are not IPv6 addresses")
	}
	payloadLen := b.Len()
	if payloadLen > 0xffff {
		return decodeErr(LayerTypeIPv6, "payload too long")
	}
	hdr := b.PrependBytes(ipv6HeaderLen)
	vtf := uint32(6)<<28 | uint32(ip.TrafficClass)<<20 | ip.FlowLabel&0xfffff
	binary.BigEndian.PutUint32(hdr[0:4], vtf)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(payloadLen))
	hdr[6] = ip.NextHeader
	hdr[7] = ip.HopLimit
	src16, dst16 := ip.Src.As16(), ip.Dst.As16()
	copy(hdr[8:24], src16[:])
	copy(hdr[24:40], dst16[:])
	return nil
}
