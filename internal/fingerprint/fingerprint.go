// Package fingerprint implements a p0f-style passive TCP/IP
// fingerprinter (§5.3.1). It inspects the SYN segment a resolver sends
// when retrying a truncated answer over TCP and matches the packet's
// characteristics — inferred initial TTL, window size, MSS, and option
// layout — against a signature database derived from the lab OS
// profiles.
//
// Like p0f in the paper, the matcher leaves most hosts unclassified:
// middleboxes and load balancers normalize SYN options
// (netsim.Host.ScrubFingerprint), producing signatures absent from the
// database.
package fingerprint

import (
	"repro/internal/oskernel"
	"repro/internal/packet"
)

// Label is a fingerprint classification result.
type Label string

// Classification labels (the p0f outputs §5.3.1 discusses).
const (
	LabelUnknown Label = ""
	LabelLinux   Label = "Linux"
	LabelFreeBSD Label = "FreeBSD"
	LabelWindows Label = "Windows"
	LabelBaidu   Label = "BaiduSpider"
)

// Signature is the SYN-derived tuple the matcher keys on.
type Signature struct {
	InitialTTL  uint8
	Window      uint16
	MSS         uint16
	WindowScale int8 // -1 when the option is absent
	SACKPermit  bool
	Timestamps  bool
}

// DB is a signature database.
type DB struct {
	sigs map[Signature]Label
}

// NewDB builds the default database from the lab OS profiles.
func NewDB() *DB {
	db := &DB{sigs: make(map[Signature]Label)}
	add := func(p *oskernel.Profile, l Label) {
		fp := p.Fingerprint
		db.sigs[Signature{
			InitialTTL:  fp.InitialTTL,
			Window:      fp.WindowSize,
			MSS:         fp.MSS,
			WindowScale: fp.WindowScale,
			SACKPermit:  fp.SACKPermit,
			Timestamps:  fp.Timestamps,
		}] = l
	}
	add(oskernel.UbuntuModern, LabelLinux)
	add(oskernel.UbuntuLegacy, LabelLinux)
	add(oskernel.FreeBSD12, LabelFreeBSD)
	add(oskernel.WindowsModern, LabelWindows)
	add(oskernel.WindowsLegacy, LabelWindows)
	add(oskernel.BaiduSpiderLike, LabelBaidu)
	return db
}

// Add registers a custom signature.
func (db *DB) Add(sig Signature, label Label) { db.sigs[sig] = label }

// Len reports the number of signatures.
func (db *DB) Len() int { return len(db.sigs) }

// InferInitialTTL rounds an observed (hop-decremented) TTL up to the
// nearest conventional initial value, as p0f does.
func InferInitialTTL(observed uint8) uint8 {
	for _, v := range []uint8{32, 64, 128} {
		if observed <= v {
			return v
		}
	}
	return 255
}

// Extract derives a signature from a captured SYN packet, or reports
// false if the packet is not a usable SYN.
func Extract(pkt *packet.Packet) (Signature, bool) {
	if pkt == nil || pkt.TCP == nil || !pkt.TCP.SYN || pkt.TCP.ACK {
		return Signature{}, false
	}
	var observedTTL uint8
	switch {
	case pkt.V4 != nil:
		observedTTL = pkt.V4.TTL
	case pkt.V6 != nil:
		observedTTL = pkt.V6.HopLimit
	default:
		return Signature{}, false
	}
	sig := Signature{
		InitialTTL:  InferInitialTTL(observedTTL),
		Window:      pkt.TCP.Window,
		WindowScale: -1,
	}
	if mss, ok := pkt.TCP.MSS(); ok {
		sig.MSS = mss
	}
	if ws, ok := pkt.TCP.WindowScale(); ok {
		sig.WindowScale = int8(ws)
	}
	if _, ok := pkt.TCP.Option(packet.TCPOptSACKPermit); ok {
		sig.SACKPermit = true
	}
	if _, ok := pkt.TCP.Option(packet.TCPOptTimestamps); ok {
		sig.Timestamps = true
	}
	return sig, true
}

// Classify matches a captured SYN against the database.
func (db *DB) Classify(pkt *packet.Packet) Label {
	sig, ok := Extract(pkt)
	if !ok {
		return LabelUnknown
	}
	return db.sigs[sig]
}
