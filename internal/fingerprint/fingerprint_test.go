package fingerprint

import (
	"encoding/binary"
	"net/netip"
	"testing"

	"repro/internal/oskernel"
	"repro/internal/packet"
)

// synFor builds a SYN packet as a host with the given profile would emit
// it, after transit decremented the TTL by hops.
func synFor(t *testing.T, p *oskernel.Profile, hops uint8, v6 bool) *packet.Packet {
	t.Helper()
	fp := p.Fingerprint
	mss := make([]byte, 2)
	binary.BigEndian.PutUint16(mss, fp.MSS)
	opts := []packet.TCPOption{{Kind: packet.TCPOptMSS, Data: mss}}
	if fp.SACKPermit {
		opts = append(opts, packet.TCPOption{Kind: packet.TCPOptSACKPermit})
	}
	if fp.Timestamps {
		opts = append(opts, packet.TCPOption{Kind: packet.TCPOptTimestamps, Data: make([]byte, 8)})
	}
	if fp.WindowScale >= 0 {
		opts = append(opts, packet.TCPOption{Kind: packet.TCPOptWindowScale, Data: []byte{byte(fp.WindowScale)}})
	}
	tcp := &packet.TCP{SrcPort: 50000, DstPort: 53, SYN: true, Window: fp.WindowSize, Options: opts}
	src, dst := netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("198.51.100.1")
	if v6 {
		src, dst = netip.MustParseAddr("2001:db8::1"), netip.MustParseAddr("2001:db8::2")
	}
	raw, err := packet.BuildTCP(src, dst, tcp, fp.InitialTTL-hops, nil)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := packet.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func TestClassifyLabOSes(t *testing.T) {
	db := NewDB()
	cases := []struct {
		p    *oskernel.Profile
		want Label
	}{
		{oskernel.UbuntuModern, LabelLinux},
		{oskernel.UbuntuLegacy, LabelLinux},
		{oskernel.FreeBSD12, LabelFreeBSD},
		{oskernel.WindowsModern, LabelWindows},
		{oskernel.WindowsLegacy, LabelWindows},
		{oskernel.BaiduSpiderLike, LabelBaidu},
	}
	for _, c := range cases {
		for _, hops := range []uint8{5, 12, 20} {
			if got := db.Classify(synFor(t, c.p, hops, false)); got != c.want {
				t.Errorf("Classify(%s, hops=%d) = %q, want %q", c.p, hops, got, c.want)
			}
		}
		if got := db.Classify(synFor(t, c.p, 9, true)); got != c.want {
			t.Errorf("Classify(%s, v6) = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestScrubbedSYNUnclassified(t *testing.T) {
	// A normalized SYN (as netsim emits for ScrubFingerprint hosts) must
	// not match any database entry — reproducing p0f's ~90% unknown rate.
	db := NewDB()
	mss := make([]byte, 2)
	binary.BigEndian.PutUint16(mss, 1400)
	tcp := &packet.TCP{SrcPort: 1, DstPort: 53, SYN: true, Window: 16384,
		Options: []packet.TCPOption{{Kind: packet.TCPOptMSS, Data: mss}}}
	raw, err := packet.BuildTCP(netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("198.51.100.1"), tcp, 55, nil)
	if err != nil {
		t.Fatal(err)
	}
	pkt, _ := packet.Decode(raw)
	if got := db.Classify(pkt); got != LabelUnknown {
		t.Fatalf("scrubbed SYN classified as %q", got)
	}
}

func TestInferInitialTTL(t *testing.T) {
	cases := []struct{ in, want uint8 }{
		{64, 64}, {50, 64}, {33, 64}, {32, 32}, {20, 32},
		{128, 128}, {110, 128}, {200, 255}, {255, 255},
	}
	for _, c := range cases {
		if got := InferInitialTTL(c.in); got != c.want {
			t.Errorf("InferInitialTTL(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestExtractRejectsNonSYN(t *testing.T) {
	if _, ok := Extract(nil); ok {
		t.Fatal("nil packet extracted")
	}
	tcp := &packet.TCP{SrcPort: 1, DstPort: 2, SYN: true, ACK: true, Window: 1}
	raw, _ := packet.BuildTCP(netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("192.0.2.2"), tcp, 64, nil)
	pkt, _ := packet.Decode(raw)
	if _, ok := Extract(pkt); ok {
		t.Fatal("SYN-ACK extracted as client SYN")
	}
}

func TestCustomSignature(t *testing.T) {
	db := NewDB()
	n := db.Len()
	db.Add(Signature{InitialTTL: 255, Window: 4128, MSS: 536, WindowScale: -1}, "Cisco")
	if db.Len() != n+1 {
		t.Fatal("Add did not grow the DB")
	}
}
