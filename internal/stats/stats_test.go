package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBetaCDFClosedForm(t *testing.T) {
	// For Beta(9, 2): I_x = x^9 (10 - 9x).
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		want := math.Pow(x, 9) * (10 - 9*x)
		got := BetaCDF(x, 9, 2)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("BetaCDF(%v, 9, 2) = %v, want %v", x, got, want)
		}
	}
}

func TestBetaCDFSymmetric(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.05, 0.25, 0.5, 0.8, 0.95} {
		got := BetaCDF(x, 3, 7) + BetaCDF(1-x, 7, 3)
		if math.Abs(got-1) > 1e-10 {
			t.Errorf("symmetry broken at %v: sum = %v", x, got)
		}
	}
}

func TestBetaCDFBounds(t *testing.T) {
	if BetaCDF(-1, 2, 2) != 0 || BetaCDF(0, 2, 2) != 0 {
		t.Fatal("CDF below support must be 0")
	}
	if BetaCDF(1, 2, 2) != 1 || BetaCDF(2, 2, 2) != 1 {
		t.Fatal("CDF above support must be 1")
	}
}

func TestBetaPDFIntegratesToCDF(t *testing.T) {
	// Trapezoid integration of the pdf should match the cdf.
	a, b := 9.0, 2.0
	const steps = 20000
	sum := 0.0
	prev := BetaPDF(0, a, b)
	for i := 1; i <= steps; i++ {
		x := float64(i) / steps * 0.8
		cur := BetaPDF(x, a, b)
		sum += (prev + cur) / 2 * (0.8 / steps)
		prev = cur
	}
	if math.Abs(sum-BetaCDF(0.8, a, b)) > 1e-4 {
		t.Fatalf("integral = %v, CDF = %v", sum, BetaCDF(0.8, a, b))
	}
}

func TestRangeModelMatchesSimulation(t *testing.T) {
	// Empirical check of the paper's model: the range of 10 uniform
	// draws from a pool of size s follows (s-1)·Beta(9, 2).
	rng := rand.New(rand.NewSource(42))
	const s = 2500
	const trials = 20000
	below := 0
	threshold := RangeQuantile(0.5, s, SampleSize)
	for trial := 0; trial < trials; trial++ {
		lo, hi := s, -1
		for i := 0; i < SampleSize; i++ {
			v := rng.Intn(s)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if float64(hi-lo) <= threshold {
			below++
		}
	}
	frac := float64(below) / trials
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("empirical P(range <= median) = %v, want ~0.5", frac)
	}
}

func TestRangeQuantileReproducesPaperCutoffs(t *testing.T) {
	// §5.3.2 / Table 4: the 99.9%-accuracy cutoffs.
	cases := []struct {
		p    float64
		s    int
		want float64
		tol  float64
	}{
		{0.001, 2500, 940, 2},  // Windows low cutoff (band starts 941)
		{0.999, 2500, 2488, 2}, // Windows high cutoff
		// FreeBSD low cutoff: the paper prints 6,125, which appears to be
		// empirically derived from their 1,000 lab samples; the exact
		// Beta(9,2) quantile is ≈6,168 (0.7% away).
		{0.001, 16383, 6168, 4},
		{0.001, 28232, 10630, 30}, // Linux low quantile (subsumed by boundary)
	}
	for _, c := range cases {
		got := RangeQuantile(c.p, c.s, SampleSize)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("RangeQuantile(%v, %d) = %v, want %v±%v", c.p, c.s, got, c.want, c.tol)
		}
	}
}

func TestOptimalBoundaryReproducesPaper(t *testing.T) {
	// FreeBSD/Linux boundary: 16,331 with 0.05% / 3.5% errors.
	cut, eHigh, eLow := OptimalBoundary(16383, 28232, SampleSize)
	if cut < 16300 || cut > 16383 {
		t.Fatalf("FreeBSD/Linux cutoff = %d, want ≈16331", cut)
	}
	if eHigh > 0.002 {
		t.Fatalf("FreeBSD misclassification = %v, want ≈0.0005", eHigh)
	}
	if eLow < 0.02 || eLow > 0.06 {
		t.Fatalf("Linux misclassification = %v, want ≈0.035", eLow)
	}
	// Linux/full-range boundary: ≈28,222 with ≈0.35% collective error.
	cut2, e2High, e2Low := OptimalBoundary(28232, 64511, SampleSize)
	if cut2 < 28150 || cut2 > 28232 {
		t.Fatalf("Linux/full cutoff = %d, want ≈28222", cut2)
	}
	if e2High+e2Low > 0.006 {
		t.Fatalf("collective error = %v, want ≈0.0035", e2High+e2Low)
	}
}

func TestDeriveBandsReproducesTable4(t *testing.T) {
	pools := []PoolSpec{
		{Label: "Windows DNS", Size: 2500},
		{Label: "FreeBSD", Size: 16383},
		{Label: "Linux", Size: 28232},
		{Label: "Full Port Range", Size: 64511},
	}
	bands := DeriveBands(pools, SampleSize, 0.999, 65536)
	if len(bands) != 8 {
		t.Fatalf("got %d bands, want Table 4's 8: %v", len(bands), bands)
	}
	type expect struct {
		lo, hi int
		tolLo  int
		tolHi  int
		label  string
	}
	wants := []expect{
		{0, 0, 0, 0, "zero"},
		{1, 200, 0, 0, "low"},
		{201, 940, 0, 2, ""},
		{941, 2488, 2, 2, "Windows DNS"},
		{2489, 6124, 2, 50, ""},
		{6125, 16331, 50, 60, "FreeBSD"},
		{16332, 28222, 60, 60, "Linux"},
		{28223, 65536, 60, 0, "Full Port Range"},
	}
	for i, w := range wants {
		b := bands[i]
		if abs(b.Lo-w.lo) > w.tolLo || abs(b.Hi-w.hi) > w.tolHi {
			t.Errorf("band %d = %v, want %d-%d (±%d/±%d)", i, b, w.lo, w.hi, w.tolLo, w.tolHi)
		}
		if b.Label != w.label {
			t.Errorf("band %d label = %q, want %q", i, b.Label, w.label)
		}
	}
	// Bands must partition [0, 65536] without gaps or overlap.
	next := 0
	for _, b := range bands {
		if b.Lo != next {
			t.Fatalf("band gap/overlap at %d (expected lo %d): %v", b.Lo, next, bands)
		}
		next = b.Hi + 1
	}
	if next != 65537 {
		t.Fatalf("bands end at %d", next-1)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestBandFor(t *testing.T) {
	bands := []Band{{Lo: 0, Hi: 0}, {Lo: 1, Hi: 10, Label: "x"}}
	if b, ok := BandFor(bands, 5); !ok || b.Label != "x" {
		t.Fatal("BandFor failed")
	}
	if _, ok := BandFor(bands, 11); ok {
		t.Fatal("BandFor matched outside")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(100, 1000)
	for i := 0; i < 50; i++ {
		h.Add(250)
	}
	h.Add(-5)
	h.Add(5000)
	if h.Bin(250) != 50 {
		t.Fatalf("bin(250) = %d", h.Bin(250))
	}
	if h.Bin(0) != 1 || h.Bin(1000) != 1 {
		t.Fatal("clamping failed")
	}
	if h.PeakBin() != 2 {
		t.Fatalf("peak bin = %d", h.PeakBin())
	}
	if h.N != 52 {
		t.Fatalf("N = %d", h.N)
	}
	if got := h.Quantile(0.5); got != 200 {
		t.Fatalf("median bin start = %d", got)
	}
}

func TestMedian(t *testing.T) {
	if Median([]int{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]int{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestRangeOf(t *testing.T) {
	if RangeOf([]uint16{53, 53, 53}) != 0 {
		t.Fatal("fixed-port range must be 0")
	}
	if RangeOf([]uint16{1000, 5000, 3000}) != 4000 {
		t.Fatal("range wrong")
	}
	if RangeOf(nil) != 0 {
		t.Fatal("empty range")
	}
}

func TestStrictlyIncreasing(t *testing.T) {
	inc, wrap := StrictlyIncreasing([]uint16{1, 2, 3, 4})
	if !inc || wrap {
		t.Fatal("plain increasing misdetected")
	}
	inc, wrap = StrictlyIncreasing([]uint16{100, 101, 102, 5, 6})
	if !inc || !wrap {
		t.Fatal("wrapping sequence misdetected")
	}
	inc, _ = StrictlyIncreasing([]uint16{1, 3, 2, 4})
	if inc {
		t.Fatal("non-monotonic accepted")
	}
	inc, _ = StrictlyIncreasing([]uint16{5, 5})
	if inc {
		t.Fatal("repeated value accepted as increasing")
	}
	inc, wrap = StrictlyIncreasing([]uint16{9, 1, 8, 2})
	if inc || wrap {
		t.Fatal("double wrap accepted")
	}
}

func TestUniqueCount(t *testing.T) {
	if UniqueCount([]uint16{1, 1, 2, 3, 3, 3}) != 3 {
		t.Fatal("unique count wrong")
	}
}

func TestProbUniqueAtMostPaperValue(t *testing.T) {
	// §5.2.3: ≤7 unique out of 10 draws from a pool of 200 happens
	// ~0.066% of the time ("1 out of every 1,500").
	p := ProbUniqueAtMost(7, 10, 200)
	if p < 0.0004 || p > 0.001 {
		t.Fatalf("P(≤7 unique | s=200) = %v, want ≈0.00066", p)
	}
	if ProbUniqueAtMost(10, 10, 200) != 1 {
		t.Fatal("k>=n must be certain")
	}
}

func TestQuickRangeCDFMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		r1, r2 := float64(a%2499), float64(b%2499)
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		return RangeCDF(r1, 2500, 10) <= RangeCDF(r2, 2500, 10)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQuantileInvertsCDF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 0.01 + 0.98*rng.Float64()
		s := 100 + rng.Intn(60000)
		r := RangeQuantile(p, s, 10)
		return math.Abs(RangeCDF(r, s, 10)-p) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBetaCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BetaCDF(0.6, 9, 2)
	}
}

func BenchmarkDeriveBands(b *testing.B) {
	pools := []PoolSpec{
		{Label: "Windows DNS", Size: 2500},
		{Label: "FreeBSD", Size: 16383},
		{Label: "Linux", Size: 28232},
		{Label: "Full Port Range", Size: 64511},
	}
	for i := 0; i < b.N; i++ {
		DeriveBands(pools, SampleSize, 0.999, 65536)
	}
}

func TestChiSquareRangeFitDiscriminatesPools(t *testing.T) {
	// Samples genuinely drawn from a 2,500-port pool must fit the 2,500
	// model and decisively reject the 28,232 model (and vice versa).
	rng := rand.New(rand.NewSource(77))
	draw := func(s int) []int {
		ranges := make([]int, 800)
		for i := range ranges {
			lo, hi := s, -1
			for j := 0; j < SampleSize; j++ {
				v := rng.Intn(s)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			ranges[i] = hi - lo
		}
		return ranges
	}
	winRanges := draw(2500)
	good, dof := ChiSquareRangeFit(winRanges, 2500, SampleSize, 10)
	if dof != 9 {
		t.Fatalf("dof = %d", dof)
	}
	bad, _ := ChiSquareRangeFit(winRanges, 28232, SampleSize, 10)
	if good > 3 {
		t.Errorf("true-pool fit chi2/dof = %.2f, want ~1", good)
	}
	if bad < 20*good || bad < 10 {
		t.Errorf("wrong-pool fit chi2/dof = %.2f vs true %.2f: model not discriminating", bad, good)
	}

	linRanges := draw(28232)
	good2, _ := ChiSquareRangeFit(linRanges, 28232, SampleSize, 10)
	bad2, _ := ChiSquareRangeFit(linRanges, 16383, SampleSize, 10)
	if good2 > 3 || bad2 < 10 {
		t.Errorf("linux fit: true %.2f, wrong %.2f", good2, bad2)
	}
}

func TestChiSquareRangeFitSmallSample(t *testing.T) {
	if perDof, dof := ChiSquareRangeFit([]int{1, 2, 3}, 2500, 10, 10); perDof != 0 || dof != 0 {
		t.Fatal("undersized sample must report no fit")
	}
}
