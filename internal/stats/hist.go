package stats

import "sort"

// Histogram is a fixed-width binned count over [0, Max].
type Histogram struct {
	BinWidth int
	Max      int
	Counts   []int
	N        int
}

// NewHistogram creates a histogram over [0, max] with the given bin
// width.
func NewHistogram(binWidth, max int) *Histogram {
	if binWidth < 1 {
		binWidth = 1
	}
	return &Histogram{
		BinWidth: binWidth,
		Max:      max,
		Counts:   make([]int, max/binWidth+1),
	}
}

// Add records a value; out-of-domain values clamp to the edge bins.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v > h.Max {
		v = h.Max
	}
	h.Counts[v/h.BinWidth]++
	h.N++
}

// Bin returns the count of the bin containing v.
func (h *Histogram) Bin(v int) int {
	if v < 0 || v > h.Max {
		return 0
	}
	return h.Counts[v/h.BinWidth]
}

// BinStart returns the lower edge of bin i.
func (h *Histogram) BinStart(i int) int { return i * h.BinWidth }

// PeakBin returns the index of the fullest bin.
func (h *Histogram) PeakBin() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// Quantile returns the q-quantile (0..1) of the recorded values,
// approximated at bin resolution.
func (h *Histogram) Quantile(q float64) int {
	if h.N == 0 {
		return 0
	}
	target := int(q * float64(h.N))
	run := 0
	for i, c := range h.Counts {
		run += c
		if run > target {
			return h.BinStart(i)
		}
	}
	return h.Max
}

// Median returns the median of ints (used for §4.1's "median number of
// spoofed sources" statistic).
func Median(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int(nil), xs...)
	sort.Ints(s)
	n := len(s)
	if n%2 == 1 {
		return float64(s[n/2])
	}
	return float64(s[n/2-1]+s[n/2]) / 2
}

// RangeOf returns max−min of a port sample (the paper's core §5.2
// statistic). An empty or single-element sample has range 0.
func RangeOf(ports []uint16) int {
	if len(ports) == 0 {
		return 0
	}
	lo, hi := ports[0], ports[0]
	for _, p := range ports {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return int(hi) - int(lo)
}

// StrictlyIncreasing reports whether the sample increases monotonically,
// allowing a single wrap back to the bottom of the allocator's pool
// (§5.2.3: 159 of 244 low-range resolvers were strictly increasing; 130
// wrapped after reaching some maximum). A genuine wrap requires every
// post-wrap value to sit below every pre-wrap value.
func StrictlyIncreasing(ports []uint16) (increasing, wrapped bool) {
	if len(ports) < 2 {
		return true, false
	}
	wrapAt := -1
	for i := 1; i < len(ports); i++ {
		if ports[i] == ports[i-1] {
			return false, false
		}
		if ports[i] < ports[i-1] {
			if wrapAt >= 0 {
				return false, false // second descent
			}
			wrapAt = i
		}
	}
	if wrapAt < 0 {
		return true, false
	}
	for _, post := range ports[wrapAt:] {
		for _, pre := range ports[:wrapAt] {
			if post >= pre {
				return false, false
			}
		}
	}
	return true, true
}

// AdjustWindowsPorts applies the §5.3.2 wrap-adjustment algorithm for
// Windows DNS port samples, using the paper's inclusive IANA bounds
// i_min = 49152, i_max = 65535 and pool size s = 2500: if all ports fall
// in the low region [i_min, i_min+s-1] or the high region
// (i_max-(s-1), i_max], with at least one in each, the low-region ports
// are increased by i_max - i_min so a wrapped pool reads as contiguous.
// Adjusted values can exceed 65535, so the result is widened to int.
func AdjustWindowsPorts(ports []uint16) []int {
	const (
		iMin = 49152
		iMax = 65535
		s    = 2500
	)
	inLow := func(p uint16) bool { return p >= iMin && p <= iMin+s-1 }
	inHigh := func(p uint16) bool { return p > iMax-(s-1) }
	anyLow, anyHigh, allInRegions := false, false, true
	for _, p := range ports {
		lo, hi := inLow(p), inHigh(p)
		if lo {
			anyLow = true
		}
		if hi {
			anyHigh = true
		}
		if !lo && !hi {
			allInRegions = false
		}
	}
	out := make([]int, len(ports))
	adjust := allInRegions && anyLow && anyHigh
	for i, p := range ports {
		if adjust && inLow(p) {
			out[i] = int(p) + (iMax - iMin)
		} else {
			out[i] = int(p)
		}
	}
	return out
}

// RangeOfInts is RangeOf for widened (wrap-adjusted) port values.
func RangeOfInts(ports []int) int {
	if len(ports) == 0 {
		return 0
	}
	lo, hi := ports[0], ports[0]
	for _, p := range ports {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return hi - lo
}

// UniqueCount returns the number of distinct values in the sample (the
// §5.2.3 small-pool detector input).
func UniqueCount(ports []uint16) int {
	seen := make(map[uint16]struct{}, len(ports))
	for _, p := range ports {
		seen[p] = struct{}{}
	}
	return len(seen)
}

// ProbUniqueAtMost returns the probability that n uniform draws from a
// pool of s ports produce at most k distinct values — the §5.2.3
// computation behind "a phenomenon that would typically only occur
// 0.066% of the time... if the size of the pool being selected from was
// actually 200" (k=7, n=10, s=200).
func ProbUniqueAtMost(k, n, s int) float64 {
	if k >= n {
		return 1
	}
	// P(#distinct = j) = C(s, j) * S2(n, j) * j! / s^n, computed by
	// dynamic programming over draws: state = number of distinct so far.
	probs := make([]float64, n+1)
	probs[0] = 1
	for draw := 0; draw < n; draw++ {
		next := make([]float64, n+1)
		for j := 0; j <= n; j++ {
			if probs[j] == 0 {
				continue
			}
			pRepeat := float64(j) / float64(s)
			next[j] += probs[j] * pRepeat
			if j+1 <= n {
				next[j+1] += probs[j] * (1 - pRepeat)
			}
		}
		probs = next
	}
	total := 0.0
	for j := 0; j <= k; j++ {
		total += probs[j]
	}
	return total
}
