// Package stats implements the statistical model of §5.3.2: the
// distribution of the *range* of n source ports drawn uniformly from a
// pool of size s is s·Beta(n−1, 2) (an order-statistic result), which
// for the paper's 10-query samples gives Beta(9, 2). From that model the
// package derives the OS-classification cutoffs of Table 4 and the
// overlay curves of Figure 3.
package stats

import (
	"fmt"
	"math"
)

// BetaPDF evaluates the Beta(a, b) density at x.
func BetaPDF(x, a, b float64) float64 {
	if x < 0 || x > 1 {
		return 0
	}
	if x == 0 {
		if a < 1 {
			return math.Inf(1)
		}
		if a == 1 {
			return b
		}
		return 0
	}
	if x == 1 {
		if b < 1 {
			return math.Inf(1)
		}
		if b == 1 {
			return a
		}
		return 0
	}
	lg1, _ := math.Lgamma(a + b)
	lg2, _ := math.Lgamma(a)
	lg3, _ := math.Lgamma(b)
	return math.Exp(lg1 - lg2 - lg3 + (a-1)*math.Log(x) + (b-1)*math.Log(1-x))
}

// BetaCDF evaluates the regularized incomplete beta function I_x(a, b),
// the CDF of Beta(a, b).
func BetaCDF(x, a, b float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lg1, _ := math.Lgamma(a + b)
	lg2, _ := math.Lgamma(a)
	lg3, _ := math.Lgamma(b)
	bt := math.Exp(lg1 - lg2 - lg3 + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return bt * betacf(x, a, b) / a
	}
	return 1 - bt*betacf(1-x, b, a)/b
}

// betacf is the continued-fraction expansion for the incomplete beta
// function (Numerical Recipes style).
func betacf(x, a, b float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// SampleRangeAlpha and SampleRangeBeta are the Beta parameters of the
// range of SampleSize uniform draws: Beta(n−1, 2).
const (
	// SampleSize is the paper's follow-up sample size (10 queries).
	SampleSize = 10
)

// RangeCDF returns P(range ≤ r) for the range of n uniform draws from a
// pool of s ports. The maximum possible range is s−1, and
// range/(s−1) ~ Beta(n−1, 2).
func RangeCDF(r float64, s, n int) float64 {
	if s <= 1 {
		if r >= 0 {
			return 1
		}
		return 0
	}
	return BetaCDF(r/float64(s-1), float64(n-1), 2)
}

// RangePDF returns the density of the range at r for a pool of s ports.
func RangePDF(r float64, s, n int) float64 {
	if s <= 1 {
		return 0
	}
	return BetaPDF(r/float64(s-1), float64(n-1), 2) / float64(s-1)
}

// RangeQuantile returns the r with P(range ≤ r) = p, by bisection.
func RangeQuantile(p float64, s, n int) float64 {
	lo, hi := 0.0, float64(s-1)
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if RangeCDF(mid, s, n) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// OptimalBoundary returns the integer range cutoff between two pools
// s1 < s2 minimizing total misclassification
// P(range₁ > r) + P(range₂ ≤ r), along with the two error terms at the
// optimum. This is the optimization that yields the paper's 16,331
// (FreeBSD/Linux) and 28,222 (Linux/full-range) cutoffs.
func OptimalBoundary(s1, s2, n int) (cutoff int, errHigh, errLow float64) {
	if s1 >= s2 {
		panic(fmt.Sprintf("stats: OptimalBoundary needs s1 < s2 (got %d, %d)", s1, s2))
	}
	best := math.Inf(1)
	for r := 1; r < s2; r++ {
		e1 := 1 - RangeCDF(float64(r), s1, n)
		e2 := RangeCDF(float64(r), s2, n)
		if e1+e2 < best {
			best = e1 + e2
			cutoff, errHigh, errLow = r, e1, e2
		}
		// Past the smaller pool's maximum, e1 is 0 and e2 only grows.
		if r > s1 {
			break
		}
	}
	return cutoff, errHigh, errLow
}

// Band is a half-open source-port-range band [Lo, Hi] attributed to a
// pool (Table 4 rows).
type Band struct {
	Lo, Hi int
	Label  string
	Pool   int // pool size, 0 for unattributed gap bands
}

// Contains reports whether a range value falls in the band.
func (b Band) Contains(r int) bool { return r >= b.Lo && r <= b.Hi }

// String formats the band like the paper's Table 4 rows.
func (b Band) String() string {
	label := ""
	if b.Label != "" {
		label = " (" + b.Label + ")"
	}
	return fmt.Sprintf("%d-%d%s", b.Lo, b.Hi, label)
}

// PoolSpec names a pool for band derivation.
type PoolSpec struct {
	Label string
	Size  int
}

// DeriveBands reproduces the Table 4 banding: for each pool (ascending
// size), a band [Q(1−acc), Q(acc)] — except that adjacent pools closer
// than their quantile bands are split at the misclassification-minimizing
// boundary — with unattributed gap bands in between, plus the fixed
// leading bands [0,0] and [1,200] (§5.2.1, §5.2.3) and a trailing band
// to maxRange.
func DeriveBands(pools []PoolSpec, n int, acc float64, maxRange int) []Band {
	bands := []Band{
		{Lo: 0, Hi: 0, Label: "zero"},
		{Lo: 1, Hi: 200, Label: "low"},
	}
	prevHi := 200
	for i, p := range pools {
		lo := int(math.Ceil(RangeQuantile(1-acc, p.Size, n)))
		hi := int(math.Floor(RangeQuantile(acc, p.Size, n)))
		if lo <= prevHi {
			lo = prevHi + 1
		}
		if i+1 < len(pools) {
			// If the next pool's low quantile falls below this pool's
			// high quantile, split at the optimal boundary instead.
			nextLo := int(math.Ceil(RangeQuantile(1-acc, pools[i+1].Size, n)))
			if nextLo <= hi {
				cut, _, _ := OptimalBoundary(p.Size, pools[i+1].Size, n)
				hi = cut
			}
		} else {
			hi = maxRange // last band extends to the maximum
		}
		if lo > prevHi+1 {
			bands = append(bands, Band{Lo: prevHi + 1, Hi: lo - 1})
		}
		bands = append(bands, Band{Lo: lo, Hi: hi, Label: p.Label, Pool: p.Size})
		prevHi = hi
	}
	if prevHi < maxRange {
		bands = append(bands, Band{Lo: prevHi + 1, Hi: maxRange, Label: "Full Port Range", Pool: 64511})
	}
	return bands
}

// BandFor returns the band containing r.
func BandFor(bands []Band, r int) (Band, bool) {
	for _, b := range bands {
		if b.Contains(r) {
			return b, true
		}
	}
	return Band{}, false
}

// ChiSquareRangeFit quantifies Figure 3's "tight fit between the
// histogram and the theoretical Beta curves": it bins the observed
// sample ranges into equal-probability bins under the Beta(n−1, 2)
// range model for a pool of size s and returns the chi-square statistic
// per degree of freedom. Values near 1 indicate the observations are
// consistent with the model; a wrong pool size inflates the statistic
// by orders of magnitude.
func ChiSquareRangeFit(ranges []int, s, n, bins int) (perDof float64, dof int) {
	if bins < 2 {
		bins = 10
	}
	if len(ranges) < bins {
		return 0, 0
	}
	// Equal-probability bin edges from the model quantiles.
	edges := make([]float64, bins+1)
	edges[0] = -1 // ranges are >= 0
	for i := 1; i < bins; i++ {
		edges[i] = RangeQuantile(float64(i)/float64(bins), s, n)
	}
	edges[bins] = float64(s) // beyond the maximum possible range
	observed := make([]int, bins)
	for _, r := range ranges {
		for b := 0; b < bins; b++ {
			if float64(r) > edges[b] && float64(r) <= edges[b+1] {
				observed[b]++
				break
			}
			if b == bins-1 {
				observed[b]++ // out-of-model ranges land in the last bin
			}
		}
	}
	expected := float64(len(ranges)) / float64(bins)
	var chi float64
	for _, o := range observed {
		d := float64(o) - expected
		chi += d * d / expected
	}
	dof = bins - 1
	return chi / float64(dof), dof
}
