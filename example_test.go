package doors_test

import (
	"fmt"

	doors "repro"
	"repro/internal/ditl"
	"repro/internal/scanner"
)

// ExampleRunSurvey runs a tiny deterministic survey. The simulation is
// fully seeded, so the numbers are stable across runs and platforms.
func ExampleRunSurvey() {
	survey, err := doors.RunSurvey(doors.SurveyConfig{
		Population: ditl.Params{Seed: 7, ASes: 40},
		Scanner:    scanner.Config{Seed: 8, Rate: 10000},
	})
	if err != nil {
		panic(err)
	}
	r := survey.Report
	fmt.Printf("v4 targets: %d\n", r.V4.Targets)
	fmt.Printf("v4 reachable: %d\n", r.V4.ReachableAddrs)
	fmt.Printf("ASes flagged: %d of %d\n", r.V4.ReachableASes, r.V4.ASes)
	// Output:
	// v4 targets: 1712
	// v4 reachable: 55
	// ASes flagged: 17 of 40
}
