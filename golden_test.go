package doors_test

// Golden-report regression test: the full serialized Report from a
// small seeded survey is diffed against a checked-in fixture, so ANY
// behavioural drift — a changed counter, a reordered table row, a new
// field defaulting wrong — fails loudly instead of slipping past the
// spot checks in ExampleRunSurvey.
//
// To regenerate after an intentional change:
//
//	UPDATE_GOLDEN=1 go test -run TestGoldenReport .

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	doors "repro"
	"repro/internal/ditl"
	"repro/internal/scanner"
)

const goldenPath = "testdata/golden_report.json"

func TestGoldenReport(t *testing.T) {
	survey, err := doors.RunSurvey(doors.SurveyConfig{
		Population: ditl.Params{Seed: 7, ASes: 40},
		Scanner:    scanner.Config{Seed: 8, Rate: 10000},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(survey.Report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create the fixture)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report drifted from %s:\n%s\n\nIf the change is intentional, "+
			"regenerate with UPDATE_GOLDEN=1 go test -run TestGoldenReport .",
			goldenPath, firstDiff(got, want))
	}
}

// firstDiff renders the first divergent line pair, enough to orient
// without dumping two full reports.
func firstDiff(got, want []byte) string {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("length differs: got %d lines, want %d", len(gl), len(wl))
}
