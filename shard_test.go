package doors

// Shard-invariance tests for the parallel survey engine: the same
// seeds must produce the same survey — targets, hits, report, tables —
// at any shard count, including the single-shard path.

import (
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/ditl"
	"repro/internal/netsim"
	"repro/internal/report"
	"repro/internal/scanner"
)

func shardConfig(shards int) SurveyConfig {
	return SurveyConfig{
		Population: ditl.Params{Seed: 7, ASes: 40},
		Scanner:    scanner.Config{Seed: 8, Rate: 10000},
		Shards:     shards,
	}
}

func TestShardedSurveyIsDeterministic(t *testing.T) {
	base, err := RunSurvey(shardConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if base.Report.V4.ReachableAddrs == 0 {
		t.Fatal("baseline survey reached nothing")
	}
	for _, k := range []int{2, 8} {
		s, err := RunSurvey(shardConfig(k))
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if len(s.Worlds) != k {
			t.Fatalf("shards=%d: got %d worlds", k, len(s.Worlds))
		}
		if s.Probes != base.Probes || s.Duration != base.Duration {
			t.Fatalf("shards=%d: probes/duration %d/%v, want %d/%v",
				k, s.Probes, s.Duration, base.Probes, base.Duration)
		}
		if !reflect.DeepEqual(s.Scanner.Targets, base.Scanner.Targets) {
			t.Fatalf("shards=%d: merged target list differs", k)
		}
		if !reflect.DeepEqual(s.Scanner.Hits, base.Scanner.Hits) {
			t.Fatalf("shards=%d: merged hits differ (%d vs %d)",
				k, len(s.Scanner.Hits), len(base.Scanner.Hits))
		}
		if !reflect.DeepEqual(s.Scanner.Partials, base.Scanner.Partials) {
			t.Fatalf("shards=%d: merged partials differ", k)
		}
		if s.Scanner.Stats != base.Scanner.Stats {
			t.Fatalf("shards=%d: stats differ: %+v vs %+v", k, s.Scanner.Stats, base.Scanner.Stats)
		}
		if !reflect.DeepEqual(s.PublicDNS, base.PublicDNS) {
			t.Fatalf("shards=%d: merged public-DNS allowlist differs", k)
		}
		if !reflect.DeepEqual(s.Report, base.Report) {
			t.Fatalf("shards=%d: report differs", k)
		}
		// The rendered tables are the user-visible artifact; they must
		// be byte-identical, not merely statistically close.
		for name, render := range map[string]func(*Survey) string{
			"table1": func(s *Survey) string { return report.Table1(s.Report) },
			"table2": func(s *Survey) string { return report.Table2(s.Report) },
			"table3": func(s *Survey) string { return report.Table3(s.Report) },
		} {
			if got, want := render(s), render(base); got != want {
				t.Errorf("shards=%d: %s differs:\n got: %s\nwant: %s", k, name, got, want)
			}
		}
	}
}

// TestShardedSurveyWithChurnIsDeterministic exercises the churn path:
// churn decisions are keyed on host identity, so the offline set is
// shard-invariant too.
func TestShardedSurveyWithChurnIsDeterministic(t *testing.T) {
	cfg := shardConfig(1)
	cfg.ChurnFraction = 0.3
	base, err := RunSurvey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	s, err := RunSurvey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Report, base.Report) {
		t.Fatal("churned report differs across shard counts")
	}
	if !reflect.DeepEqual(s.Scanner.Hits, base.Scanner.Hits) {
		t.Fatal("churned hits differ across shard counts")
	}
}

// chaosDropTotal sums the chaos-injected transit drops across a
// survey's shard worlds.
func chaosDropTotal(s *Survey) uint64 {
	var n uint64
	for _, w := range s.Worlds {
		n += w.Net.Drops()[netsim.DropChaos]
	}
	return n
}

// TestShardedSurveyWithChaosIsDeterministic pins the tentpole guarantee
// of the fault-injection layer: with chaos enabled, the fault schedule
// (flap drops, crashes), the merged Report, and the invariant-checker
// totals are all bit-identical at K=1, 3, and 5 shards — and the
// invariants hold (zero violations) throughout.
func TestShardedSurveyWithChaosIsDeterministic(t *testing.T) {
	chaosConfig := func(shards int) SurveyConfig {
		cfg := shardConfig(shards)
		cfg.Chaos = chaos.Default(99)
		return cfg
	}
	base, err := RunSurvey(chaosConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Chaos must actually bite, and the survey must survive it.
	if base.ChaosCrashes == 0 {
		t.Fatal("chaos schedule injected no resolver crashes")
	}
	if chaosDropTotal(base) == 0 {
		t.Fatal("chaos layer dropped no packets (no flaps hit live traffic)")
	}
	if base.Report.V4.ReachableAddrs == 0 {
		t.Fatal("chaotic survey reached nothing")
	}
	if base.Invariants == nil {
		t.Fatal("invariant checker was not attached")
	}
	if !base.Invariants.Ok() {
		t.Fatalf("invariant violations under chaos: %v", base.Invariants.Violations)
	}
	if base.Invariants.DeliveriesChecked == 0 || base.Invariants.ResponsesChecked == 0 ||
		base.Invariants.CacheServes == 0 || base.Invariants.CacheFlushes == 0 {
		t.Fatalf("invariant checker saw no traffic: %+v", *base.Invariants)
	}

	for _, k := range []int{3, 5} {
		s, err := RunSurvey(chaosConfig(k))
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if s.Probes != base.Probes || s.Duration != base.Duration {
			t.Fatalf("shards=%d: probes/duration %d/%v, want %d/%v",
				k, s.Probes, s.Duration, base.Probes, base.Duration)
		}
		if s.ChaosCrashes != base.ChaosCrashes {
			t.Fatalf("shards=%d: %d chaos crashes, want %d", k, s.ChaosCrashes, base.ChaosCrashes)
		}
		if got, want := chaosDropTotal(s), chaosDropTotal(base); got != want {
			t.Fatalf("shards=%d: %d chaos drops, want %d", k, got, want)
		}
		if !reflect.DeepEqual(s.Scanner.Targets, base.Scanner.Targets) {
			t.Fatalf("shards=%d: merged target list differs", k)
		}
		if !reflect.DeepEqual(s.Scanner.Hits, base.Scanner.Hits) {
			t.Fatalf("shards=%d: merged hits differ (%d vs %d)",
				k, len(s.Scanner.Hits), len(base.Scanner.Hits))
		}
		if !reflect.DeepEqual(s.Scanner.Partials, base.Scanner.Partials) {
			t.Fatalf("shards=%d: merged partials differ", k)
		}
		if s.Scanner.Stats != base.Scanner.Stats {
			t.Fatalf("shards=%d: stats differ: %+v vs %+v", k, s.Scanner.Stats, base.Scanner.Stats)
		}
		if !reflect.DeepEqual(s.Invariants, base.Invariants) {
			t.Fatalf("shards=%d: invariant report differs: %+v vs %+v",
				k, *s.Invariants, *base.Invariants)
		}
		if !reflect.DeepEqual(s.Report, base.Report) {
			t.Fatalf("shards=%d: report differs", k)
		}
	}
}

// TestShardCountResolution pins the Shards knob semantics (resolved by
// the campaign runner the survey delegates to).
func TestShardCountResolution(t *testing.T) {
	if got := (campaign.Config{}).ShardCount(); got != 1 {
		t.Fatalf("default shards = %d, want 1", got)
	}
	if got := (campaign.Config{Shards: 3}).ShardCount(); got != 3 {
		t.Fatalf("explicit shards = %d, want 3", got)
	}
	if got := (campaign.Config{Shards: -1}).ShardCount(); got < 1 {
		t.Fatalf("auto shards = %d, want >= 1", got)
	}
}
