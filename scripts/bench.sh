#!/bin/sh
# Runs the headline benchmarks and records them as JSON (default
# BENCH_1.json in the repo root): the event-queue hot path and the
# full-survey wall clock, single-shard vs one-shard-per-CPU. On a
# single-CPU machine the sharded numbers match the serial ones; the
# speedup shows up with GOMAXPROCS > 1.
#
# With a second argument naming a baseline JSON (a previous run's
# output), the script also guards against regressions: if the new
# BenchmarkHeadlineReachability ns_per_op exceeds the baseline's by
# more than 5%, it exits non-zero after writing the new file.
#
#   ./scripts/bench.sh                         # write BENCH_1.json
#   ./scripts/bench.sh BENCH_5.json BENCH_1.json   # write + compare
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_1.json}"
baseline="${2:-}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkQueue$' -benchmem -count=1 ./internal/eventq | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkHeadlineReachability' -benchmem -count=1 -benchtime 3x -timeout 30m . | tee -a "$tmp"

awk -v cpus="$(go env GOMAXPROCS 2>/dev/null || nproc)" '
BEGIN { print "{"; first = 1 }
/^Benchmark/ && NF >= 8 {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, $2, $3, $5, $7
}
END { print "\n}" }' "$tmp" > "$out"

echo "wrote $out"

if [ -n "$baseline" ]; then
    if [ ! -f "$baseline" ]; then
        echo "bench: baseline $baseline not found, skipping comparison" >&2
        exit 0
    fi
    # Pull one benchmark's ns_per_op out of the flat JSON both files use.
    ns_of() {
        awk -v key="\"$2\"" '$0 ~ key {
            if (match($0, /"ns_per_op": [0-9.]+/))
                print substr($0, RSTART + 13, RLENGTH - 13)
        }' "$1"
    }
    new_ns="$(ns_of "$out" BenchmarkHeadlineReachability)"
    old_ns="$(ns_of "$baseline" BenchmarkHeadlineReachability)"
    if [ -z "$new_ns" ] || [ -z "$old_ns" ]; then
        echo "bench: BenchmarkHeadlineReachability missing from $out or $baseline" >&2
        exit 1
    fi
    awk -v new="$new_ns" -v old="$old_ns" 'BEGIN {
        ratio = new / old
        printf "headline survey: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%)\n", \
            new, old, 100 * (ratio - 1)
        if (ratio > 1.05) {
            printf "bench: REGRESSION: headline survey slowed by more than 5%%\n" > "/dev/stderr"
            exit 1
        }
    }'
fi
