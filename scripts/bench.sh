#!/bin/sh
# Runs the headline benchmarks and records them as JSON (default
# BENCH_1.json in the repo root): the event-queue hot path and the
# full-survey wall clock, single-shard vs one-shard-per-CPU. On a
# single-CPU machine the sharded numbers match the serial ones; the
# speedup shows up with GOMAXPROCS > 1.
#
# With --mem, the script additionally runs the memory-scale surveys
# under GOMEMLIMIT (default 4GiB, override via BENCH_MEMLIMIT) —
# completing under the limit is the flat-peak-memory check — and writes
# a heap profile next to the JSON output (<out>.memprofile):
#   - BenchmarkHeadlineReachability1M: 1M+ targets, streaming engine
#   - BenchmarkHeadlineReachabilityPaperScale: ~12M targets (the
#     paper's full §3 scale), fold engine (external-merge reduce)
#
# With a baseline JSON argument (a previous run's output), the script
# also guards against regressions: if the new
# BenchmarkHeadlineReachability ns_per_op OR allocs_per_op exceeds the
# baseline's by more than 5%, it exits non-zero after writing the new
# file.
#
#   ./scripts/bench.sh                              # write BENCH_1.json
#   ./scripts/bench.sh BENCH_5.json BENCH_1.json    # write + compare
#   ./scripts/bench.sh --mem BENCH_6.json BENCH_5.json  # + 1M streaming bench
set -e
cd "$(dirname "$0")/.."
mem=0
if [ "$1" = "--mem" ]; then
    mem=1
    shift
fi
out="${1:-BENCH_1.json}"
baseline="${2:-}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkQueue$' -benchmem -count=1 ./internal/eventq | tee -a "$tmp"
go test -run '^$' -bench '^BenchmarkHeadlineReachability(Sharded)?$' -benchmem -count=1 -benchtime 3x -timeout 30m . | tee -a "$tmp"
if [ "$mem" = 1 ]; then
    GOMEMLIMIT="${BENCH_MEMLIMIT:-4GiB}" go test -run '^$' \
        -bench '^BenchmarkHeadlineReachability(1M|PaperScale)$' \
        -benchmem -count=1 -benchtime 1x -timeout 120m \
        -memprofile "$out.memprofile" . | tee -a "$tmp"
fi

awk -v cpus="$(go env GOMAXPROCS 2>/dev/null || nproc)" '
BEGIN { print "{"; first = 1 }
/^Benchmark/ && NF >= 8 {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, $2, $3, $5, $7
}
END { print "\n}" }' "$tmp" > "$out"

echo "wrote $out"

if [ -n "$baseline" ]; then
    if [ ! -f "$baseline" ]; then
        echo "bench: baseline $baseline not found, skipping comparison" >&2
        exit 0
    fi
    # Pull one benchmark's metric out of the flat JSON both files use.
    # The key is quote-anchored, so BenchmarkHeadlineReachability never
    # matches the Sharded or 1M variants.
    metric_of() {
        awk -v key="\"$2\"" -v metric="\"$3\"" '$0 ~ key {
            if (match($0, metric ": [0-9.]+"))
                print substr($0, RSTART + length(metric) + 2, RLENGTH - length(metric) - 2)
        }' "$1"
    }
    guard() {
        metric="$1"
        label="$2"
        new_v="$(metric_of "$out" BenchmarkHeadlineReachability "$metric")"
        old_v="$(metric_of "$baseline" BenchmarkHeadlineReachability "$metric")"
        if [ -z "$new_v" ] || [ -z "$old_v" ]; then
            echo "bench: BenchmarkHeadlineReachability $metric missing from $out or $baseline" >&2
            return 1
        fi
        awk -v new="$new_v" -v old="$old_v" -v label="$label" 'BEGIN {
            ratio = new / old
            printf "headline survey: %.0f %s vs baseline %.0f %s (%+.1f%%)\n", \
                new, label, old, label, 100 * (ratio - 1)
            if (ratio > 1.05) {
                printf "bench: REGRESSION: headline survey %s grew by more than 5%%\n", label > "/dev/stderr"
                exit 1
            }
        }'
    }
    guard ns_per_op "ns/op"
    guard allocs_per_op "allocs/op"
fi
