#!/bin/sh
# Runs the headline benchmarks and records them as JSON (default
# BENCH_1.json in the repo root): the event-queue hot path and the
# full-survey wall clock, single-shard vs one-shard-per-CPU. On a
# single-CPU machine the sharded numbers match the serial ones; the
# speedup shows up with GOMAXPROCS > 1.
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_1.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkQueue$' -benchmem -count=1 ./internal/eventq | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkHeadlineReachability' -benchmem -count=1 -benchtime 3x -timeout 30m . | tee -a "$tmp"

awk -v cpus="$(go env GOMAXPROCS 2>/dev/null || nproc)" '
BEGIN { print "{"; first = 1 }
/^Benchmark/ && NF >= 8 {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, $2, $3, $5, $7
}
END { print "\n}" }' "$tmp" > "$out"

echo "wrote $out"
