#!/usr/bin/env bash
# Run the determinism lint and, on failure, re-emit its findings as
# GitHub Actions workflow annotations (::error file=...) so they show
# inline on the pull request diff. Locally this behaves exactly like
# `make lint` (annotations are only a different print format; the exit
# code is preserved).
set -u

out=$(mktemp)
trap 'rm -f "$out"' EXIT

make lint 2>"$out"
status=$?
cat "$out" >&2

if [ $status -ne 0 ] && [ "${GITHUB_ACTIONS:-}" = "true" ]; then
    # vet findings look like "path/file.go:12:34: message"; strip the
    # workspace prefix so annotation paths are repo-relative.
    sed -nE 's|^('"${GITHUB_WORKSPACE:-$PWD}"'/)?([^ :]+\.go):([0-9]+):([0-9]+): (.*)$|::error file=\2,line=\3,col=\4::\5|p' "$out"
fi
exit $status
