package doors

// Shard-invariance tests for the inbound-SAV campaign: the new phase
// set must be exactly as deterministic as the default survey — same
// seeds, same merged hits and Report at any shard count, with and
// without chaos — while scheduling none of the survey's follow-ups.

import (
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/ditl"
	"repro/internal/scanner"
)

func inboundSAVConfig(shards int) SurveyConfig {
	return SurveyConfig{
		Population: ditl.Params{Seed: 7, ASes: 40},
		Campaign:   campaign.NewInboundSAV(),
		Scanner:    scanner.Config{Seed: 8, Rate: 10000},
		Shards:     shards,
	}
}

// assertInboundSAVShape checks the campaign did what its phase list
// says: only main probes, no follow-up sets, no characterization hits.
func assertInboundSAVShape(t *testing.T, s *Survey) {
	t.Helper()
	if s.Campaign.Name != "inbound-sav" {
		t.Fatalf("campaign = %q, want inbound-sav", s.Campaign.Name)
	}
	if s.Scanner.Stats.FollowUpSetsSent != 0 || s.Scanner.Stats.FollowUpQueries != 0 {
		t.Fatalf("inbound-SAV campaign sent follow-ups: %+v", s.Scanner.Stats)
	}
	for _, h := range s.Scanner.Hits {
		if h.Kind != scanner.ProbeMain {
			t.Fatalf("non-main hit %v in inbound-SAV campaign", h.Kind)
		}
	}
	if got, want := s.Probes, int(s.Scanner.Stats.TargetsAdmitted); got > want {
		t.Fatalf("scheduled %d probes for %d targets, want at most one each", got, want)
	}
	if len(s.Report.OpenAddrs) != 0 {
		t.Fatalf("open-resolver list without open probes: %d entries", len(s.Report.OpenAddrs))
	}
}

func TestInboundSAVCampaignIsDeterministic(t *testing.T) {
	base, err := RunSurvey(inboundSAVConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	assertInboundSAVShape(t, base)
	if base.Report.V4.ReachableAddrs == 0 {
		t.Fatal("baseline inbound-SAV campaign reached nothing")
	}
	for _, k := range []int{2, 8} {
		s, err := RunSurvey(inboundSAVConfig(k))
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		assertInboundSAVShape(t, s)
		if s.Probes != base.Probes || s.Duration != base.Duration {
			t.Fatalf("shards=%d: probes/duration %d/%v, want %d/%v",
				k, s.Probes, s.Duration, base.Probes, base.Duration)
		}
		if !reflect.DeepEqual(s.Scanner.Targets, base.Scanner.Targets) {
			t.Fatalf("shards=%d: merged target list differs", k)
		}
		if !reflect.DeepEqual(s.Scanner.Hits, base.Scanner.Hits) {
			t.Fatalf("shards=%d: merged hits differ (%d vs %d)",
				k, len(s.Scanner.Hits), len(base.Scanner.Hits))
		}
		if s.Scanner.Stats != base.Scanner.Stats {
			t.Fatalf("shards=%d: stats differ: %+v vs %+v", k, s.Scanner.Stats, base.Scanner.Stats)
		}
		if !reflect.DeepEqual(s.Report, base.Report) {
			t.Fatalf("shards=%d: report differs", k)
		}
	}
}

func TestInboundSAVCampaignWithChaosIsDeterministic(t *testing.T) {
	chaosConfig := func(shards int) SurveyConfig {
		cfg := inboundSAVConfig(shards)
		cfg.Chaos = chaos.Default(99)
		return cfg
	}
	base, err := RunSurvey(chaosConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	assertInboundSAVShape(t, base)
	if base.Invariants == nil || !base.Invariants.Ok() {
		t.Fatalf("invariants under chaos: %+v", base.Invariants)
	}
	for _, k := range []int{3, 5} {
		s, err := RunSurvey(chaosConfig(k))
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if s.ChaosCrashes != base.ChaosCrashes {
			t.Fatalf("shards=%d: %d crashes, want %d", k, s.ChaosCrashes, base.ChaosCrashes)
		}
		if !reflect.DeepEqual(s.Scanner.Hits, base.Scanner.Hits) {
			t.Fatalf("shards=%d: merged hits differ under chaos", k)
		}
		if !reflect.DeepEqual(s.Report, base.Report) {
			t.Fatalf("shards=%d: report differs under chaos", k)
		}
		if !reflect.DeepEqual(s.Invariants, base.Invariants) {
			t.Fatalf("shards=%d: invariant report differs", k)
		}
	}
}
