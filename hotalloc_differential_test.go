package doors

// Differential validation of the hotalloc analyzer (internal/lint):
// every function exercised here is classified Never by the static
// analysis, so testing.AllocsPerRun over a warmed instance must report
// zero allocations. A failure means either a real hot-path regression
// (the function started allocating) or an analyzer false negative (it
// allocates and hotalloc missed it) — both are bugs worth a red build.
//
// The dynamic bench guard (scripts/bench.sh allocs/op gates) watches
// one headline benchmark; this test pins the individual building
// blocks the static proof covers.

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/detrand"
	"repro/internal/ditl"
	"repro/internal/eventq"
	"repro/internal/resolver"
	"repro/internal/routing"
	"repro/internal/runs"
	"repro/internal/scanner"
)

// Package-level sinks keep the measured calls from being optimized
// away without adding heap traffic of their own.
var (
	sinkU64  uint64
	sinkF64  float64
	sinkInt  int
	sinkBool bool
	sinkCat  scanner.SourceCategory
	sinkPfx  netip.Prefix
	sinkSpec ditl.ResolverSpec
	sinkHit  scanner.Hit
)

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("%s: %v allocs/op; hotalloc classifies it Never — analyzer false negative or hot-path regression", name, avg)
	}
}

func TestHotPathsAllocationFree(t *testing.T) {
	// eventq: warm push/pop cycle. After the drain, the item slab,
	// heap, and free list have capacity for steady-state reuse.
	q := eventq.New()
	tick := func(now time.Duration) {}
	for i := 0; i < 64; i++ {
		q.At(time.Duration(i)*time.Millisecond, tick)
	}
	q.Run()
	assertZeroAllocs(t, "eventq.Queue.At+Step", func() {
		q.At(q.Now()+time.Millisecond, tick)
		q.Step()
	})
	assertZeroAllocs(t, "eventq.Queue.After+Step", func() {
		q.After(time.Millisecond, tick)
		q.Step()
	})

	// detrand draws: causal-identity hashing, variadic args included
	// (the arg slices must stay on the stack).
	a4 := netip.MustParseAddr("192.0.2.7")
	a6 := netip.MustParseAddr("2001:db8::7")
	payload := []byte("question.example.")
	assertZeroAllocs(t, "detrand.Mix", func() {
		sinkU64 = detrand.Mix(1, 2, 3, 4)
	})
	assertZeroAllocs(t, "detrand.HashBytes", func() {
		sinkU64 = detrand.HashBytes(42, payload)
	})
	assertZeroAllocs(t, "detrand.AddrWords", func() {
		h, l := detrand.AddrWords(a6)
		sinkU64 = h ^ l
	})
	assertZeroAllocs(t, "detrand.Float64", func() {
		sinkF64 = detrand.Float64(7, 8)
	})
	assertZeroAllocs(t, "detrand.Intn", func() {
		sinkInt = detrand.Intn(97, 9, 10)
	})

	// Resolver admission: the ACL walk is the first hop of every
	// client query.
	acl := resolver.ACL{Allowed: []netip.Prefix{
		netip.MustParsePrefix("192.0.2.0/24"),
		netip.MustParsePrefix("2001:db8::/32"),
	}}
	assertZeroAllocs(t, "resolver.ACL.Allows", func() {
		sinkBool = acl.Allows(a4)
	})

	// Scanner categorization and the routing helpers under it.
	scannerAddrs := []netip.Addr{netip.MustParseAddr("198.51.100.1")}
	src := netip.MustParseAddr("10.1.2.3")
	assertZeroAllocs(t, "scanner.Categorize", func() {
		sinkCat = scanner.Categorize(src, a4, scannerAddrs)
	})
	assertZeroAllocs(t, "routing.SubnetOf", func() {
		sinkPfx = routing.SubnetOf(a6)
	})
	assertZeroAllocs(t, "routing.IsPrivate", func() {
		sinkBool = routing.IsPrivate(netip.MustParseAddr("fc00::1"))
	})
	assertZeroAllocs(t, "routing.IsSpecialPurpose", func() {
		sinkBool = routing.IsSpecialPurpose(a4)
	})

	// The merge core: run comparators and a warmed Merger draining
	// in-memory runs. Merger.Next's only dynamic calls are the Source
	// seam, which on the slice path allocates nothing.
	hits := []scanner.Hit{
		{Recv: time.Second, Dst: a4, Src: src, ASN: 64500},
		{Recv: 2 * time.Second, Dst: a6, Src: src, ASN: 64501},
	}
	assertZeroAllocs(t, "scanner.LessHit", func() {
		sinkBool = scanner.LessHit(&hits[0], &hits[1])
	})
	parts := []scanner.PartialHit{
		{Recv: time.Second, Client: a4, Name: "a.example."},
		{Recv: 2 * time.Second, Client: a6, Name: "b.example."},
	}
	assertZeroAllocs(t, "scanner.LessPartial", func() {
		sinkBool = scanner.LessPartial(&parts[0], &parts[1])
	})
	// Runs long enough that the measured draws never exhaust a source
	// (AllocsPerRun takes ~201 items; the merger holds 1024).
	big := make([]scanner.Hit, 512)
	for i := range big {
		big[i] = scanner.Hit{Recv: time.Duration(i) * time.Millisecond, Dst: a4, ASN: 64500}
	}
	m := runs.NewMerger(scanner.LessHit,
		&runs.SliceSource[scanner.Hit]{Run: big},
		&runs.SliceSource[scanner.Hit]{Run: big})
	assertZeroAllocs(t, "runs.Merger.Next", func() {
		sinkHit, sinkBool = m.Next()
	})

	// ditl slab accessors, measured inside the streaming view's
	// callback where the scratch ASSpec is valid.
	pop := ditl.Generate(ditl.Params{Seed: 11, ASes: 40})
	measured := false
	pop.EachAS(nil, func(i int, as *ditl.ASSpec) {
		if measured || as.NumResolvers() == 0 {
			return
		}
		measured = true
		assertZeroAllocs(t, "ditl.ASSpec.Resolver", func() {
			for k := 0; k < as.NumResolvers(); k++ {
				sinkSpec = as.Resolver(k)
			}
		})
	})
	if !measured {
		t.Fatal("population yielded no AS with resolvers to measure")
	}
}
