GO ?= go

.PHONY: check build vet test race bench

# Tier-1 verification: build + vet + full tests + race detector over
# the parallel sharded engine.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Headline performance numbers (event-queue allocations, survey
# wall-clock single-shard vs sharded), recorded as BENCH_1.json.
bench:
	./scripts/bench.sh
