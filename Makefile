GO ?= go
FUZZTIME ?= 5s

.PHONY: check build vet test race fuzz bench

# Tier-1 verification: build + vet + full tests + race detector over
# the parallel sharded engine + a short fuzz smoke over the wire
# parsers.
check: build vet test race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short native-fuzz smoke over the wire parsers (one -fuzz target per
# invocation is a go tool limitation). Raise FUZZTIME for a real hunt.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUnpack -fuzztime=$(FUZZTIME) ./internal/dnswire
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/packet

# Headline performance numbers (event-queue allocations, survey
# wall-clock single-shard vs sharded), recorded as BENCH_1.json.
bench:
	./scripts/bench.sh
