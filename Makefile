GO ?= go
FUZZTIME ?= 5s
BIN ?= bin

.PHONY: check build vet lint pragmas test race racestress fuzz bench conformance

# Tier-1 verification: build + vet + determinism lint + full tests +
# race detector over the parallel sharded engine + the concurrency
# cross-validation harness + a short fuzz smoke over the wire parsers.
check: build vet lint test race racestress fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism lint: the doorsvet analyzer suite (internal/lint) run as
# a vet tool, so findings come through the same unit-at-a-time cached
# pipeline as go vet. The -vettool path must be absolute — vet runs
# the tool with the package directory as its working directory.
lint: $(BIN)/doorsvet
	$(GO) vet -vettool=$(abspath $(BIN)/doorsvet) ./...

# Suppression audit: list every //lint:allow pragma (file:line, check,
# reason); fails when a pragma lacks its reason or names an unknown
# check.
pragmas: $(BIN)/doorsvet
	$(BIN)/doorsvet -pragmas .

# Rebuild only when the suite's sources change, so a cached binary
# (CI restores bin/doorsvet keyed on these files) is reused as-is.
DOORSVET_SRCS := $(shell find cmd/doorsvet internal/lint -name '*.go' -not -path '*/testdata/*')

$(BIN)/doorsvet: $(DOORSVET_SRCS)
	$(GO) build -o $@ ./cmd/doorsvet

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Concurrency cross-validation: two streaming campaigns race through a
# shared campaign.Runner at MaxParallel 4 under the race detector, and
# the concurrency-bearing packages must come back clean from lockguard
# and golifetime — the dynamic and static halves of the same claim.
racestress:
	$(GO) test -race -run 'TestRaceStress' -v .

# Short native-fuzz smoke over the wire parsers and the resolver
# layer-stack builder (one -fuzz target per invocation is a go tool
# limitation). Raise FUZZTIME for a real hunt.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUnpack -fuzztime=$(FUZZTIME) ./internal/dnswire
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/packet
	$(GO) test -run='^$$' -fuzz=FuzzStackBuild -fuzztime=$(FUZZTIME) ./internal/resolver

# Resolver conformance: the differential suite proving the layered
# middleware stack event-for-event identical to the frozen pre-refactor
# monolith (internal/resolver/monolith) across the query × config ×
# fault matrix, plus the forwarder-chain loop-detection property tests,
# all under the race detector.
conformance:
	$(GO) test -race -run 'TestConformance|TestLoopDetection|TestSelfForwarding|TestTwoNodeForwardCycle|TestForwardChain|TestCrashWith' -v ./internal/resolver

# Headline performance numbers (event-queue allocations, survey
# wall-clock single-shard vs sharded), recorded as BENCH_1.json.
bench:
	./scripts/bench.sh
