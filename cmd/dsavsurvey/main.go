// Command dsavsurvey runs the paper's DSAV survey (§3-§5) on a
// synthetic Internet and prints the headline results and Tables 1-4.
//
// Usage:
//
//	dsavsurvey [-ases N] [-seed N] [-rate QPS] [-loss P] [-shards K]
//	           [-campaign NAME] [-phases LIST]
//	           [-stream] [-fold] [-maxparallel N]
//	           [-wildcard] [-alldsav] [-nodsav] [-figures]
//	           [-chaos] [-invariants=false]
//	           [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	doors "repro"
	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/ditl"
	"repro/internal/report"
	"repro/internal/scanner"
	"repro/internal/world"
)

func main() {
	var (
		ases     = flag.Int("ases", 800, "number of target ASes in the synthetic population")
		seed     = flag.Int64("seed", 42, "population/world/scanner seed")
		rate     = flag.Float64("rate", 20000, "probe rate (queries per virtual second)")
		loss     = flag.Float64("loss", 0, "transit packet loss rate")
		camp     = flag.String("campaign", "survey", "campaign to run: survey (reachability + characterization) or inbound-sav (one spoofed internal source per target, no follow-ups)")
		phases   = flag.String("phases", "", "comma-separated phase list (reachability, characterization, inbound-sav) overriding -campaign")
		wildcard = flag.Bool("wildcard", false, "serve wildcard answers instead of NXDOMAIN (§3.6.4 fix)")
		allDSAV  = flag.Bool("alldsav", false, "counterfactual: every AS deploys DSAV")
		noDSAV   = flag.Bool("nodsav", false, "counterfactual: no AS deploys DSAV")
		figures  = flag.Bool("figures", false, "print Figure 2 histograms")
		shards   = flag.Int("shards", -1, "parallel simulation shards (-1 = one per CPU, 1 = serial); results are identical at any value")
		chaosOn  = flag.Bool("chaos", false, "inject the deterministic fault schedule (link flap, dup/reorder/corrupt, resolver crashes, clock skew)")
		invar    = flag.Bool("invariants", true, "check simulation invariants on every delivery and cache event")
		stream   = flag.Bool("stream", false, "stream the population: synthesize each shard's ASes on demand and discard each world after its observations reduce (identical results, per-shard peak memory)")
		fold     = flag.Bool("fold", false, "external-merge reduce (implies -stream): spill each shard's sorted hit run to disk and stream the hierarchical merge through the reducers; peak memory stays per-shard through the report")
		maxPar   = flag.Int("maxparallel", 0, "with -stream, max concurrently live shard simulations (0 = one per CPU); the peak-memory knob")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsavsurvey:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dsavsurvey:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsavsurvey:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // surface live heap, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dsavsurvey:", err)
			os.Exit(1)
		}
	}()

	c, err := campaign.ByName(*camp)
	if err == nil && *phases != "" {
		c, err = campaign.NewFromPhases(strings.Split(*phases, ","))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsavsurvey:", err)
		os.Exit(2)
	}

	cfg := doors.SurveyConfig{
		Campaign: c,
		Population: ditl.Params{Seed: *seed, ASes: *ases},
		World: world.Options{
			Seed: *seed + 1, LossRate: *loss,
			Wildcard: *wildcard, AllDSAV: *allDSAV, NoDSAV: *noDSAV,
		},
		Scanner:           scanner.Config{Seed: *seed + 2, Rate: *rate},
		Shards:            *shards,
		Stream:            *stream,
		Fold:              *fold,
		MaxParallel:       *maxPar,
		DisableInvariants: !*invar,
	}
	if *chaosOn {
		cfg.Chaos = chaos.Default(uint64(*seed) + 3)
	}
	s, err := doors.RunSurvey(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsavsurvey:", err)
		os.Exit(1)
	}

	names := make([]string, len(s.Campaign.Phases))
	for i, ph := range s.Campaign.Phases {
		names[i] = ph.Name()
	}
	// Under -fold the merged buffers are never materialized; the stats
	// counters carry the same totals.
	fmt.Printf("Campaign %q (phases: %s): %d probes over %v of virtual time; %d hits, %d partial (QNAME-minimized) hits\n\n",
		s.Campaign.Name, strings.Join(names, " → "),
		s.Probes, s.Duration, s.Scanner.Stats.HitsObserved, s.Scanner.Stats.PartialHitsObserved)
	if *chaosOn {
		fmt.Printf("Chaos: %d resolver crashes injected\n", s.ChaosCrashes)
	}
	if s.Invariants != nil {
		fmt.Printf("Invariants: %d deliveries, %d responses, %d cache serves checked; %d violations\n\n",
			s.Invariants.DeliveriesChecked, s.Invariants.ResponsesChecked,
			s.Invariants.CacheServes, s.Invariants.ViolationCount)
	}
	r := s.Report
	fmt.Println(report.Headline(r))
	fmt.Println(report.Table1(r))
	fmt.Println(report.Table2(r))
	fmt.Println(report.Table3(r))
	fmt.Println(report.Table4(r))
	fmt.Println(report.Sections(r))
	fmt.Println(report.ZeroTopPorts(r, 5))
	if *figures {
		fmt.Println(report.Histogram(
			"Figure 2 (upper): source-port range frequency, 0-65535 ('#' closed, 'o' open)",
			r.Ports.HistFullOpen, r.Ports.HistFullClosed, report.DefaultOverlays()))
		fmt.Println(report.Histogram(
			"Figure 2 (lower): source-port range frequency, 0-3000",
			r.Ports.HistZoomOpen, r.Ports.HistZoomClosed, nil))
	}
}
