// Command figures exports the data behind Figures 2, 3a, and 3b as CSV
// for external plotting: per-bin counts split by open/closed status,
// plus the Beta(9,2) model density evaluated at each bin for the
// overlay curves.
//
// Usage:
//
//	figures [-ases N] [-seed N] [-labqueries N] [-shards K] [-o DIR]
//	        [-chaos] [-invariants=false]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	doors "repro"
	"repro/internal/chaos"
	"repro/internal/ditl"
	"repro/internal/labexp"
	"repro/internal/scanner"
	"repro/internal/stats"
)

// pools for model overlays.
var pools = []struct {
	label string
	size  int
}{
	{"windows", 2500}, {"freebsd", 16383}, {"linux", 28232}, {"full", 64511},
}

func writeCSV(dir, name string, header string, rows []string) error {
	path := filepath.Join(dir, name)
	var b strings.Builder
	b.WriteString(header + "\n")
	for _, r := range rows {
		b.WriteString(r + "\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// p0fRows renders the Figure 3b p0f composition columns.
func p0fRows(win, lin *stats.Histogram) []string {
	var rows []string
	for i := range win.Counts {
		rows = append(rows, fmt.Sprintf("%d,%d,%d", win.BinStart(i), win.Counts[i], lin.Counts[i]))
	}
	return rows
}

// histRows renders one histogram pair as CSV rows with model columns.
func histRows(open, closed *stats.Histogram) []string {
	var rows []string
	for i := range closed.Counts {
		oc := 0
		if open != nil {
			oc = open.Counts[i]
		}
		binStart := closed.BinStart(i)
		cols := []string{fmt.Sprintf("%d,%d,%d", binStart, oc, closed.Counts[i])}
		for _, p := range pools {
			// Expected count density per bin under Beta(9,2), normalized
			// per sample (multiply by series size when plotting).
			density := stats.RangePDF(float64(binStart)+float64(closed.BinWidth)/2, p.size, stats.SampleSize) *
				float64(closed.BinWidth)
			cols = append(cols, fmt.Sprintf("%.6g", density))
		}
		rows = append(rows, strings.Join(cols, ","))
	}
	return rows
}

func main() {
	var (
		ases       = flag.Int("ases", 600, "survey world size")
		seed       = flag.Int64("seed", 42, "seed")
		labQueries = flag.Int("labqueries", 10000, "lab queries per configuration")
		out        = flag.String("o", "figures-out", "output directory")
		shards     = flag.Int("shards", -1, "parallel simulation shards (-1 = one per CPU, 1 = serial); results are identical at any value")
		chaosOn    = flag.Bool("chaos", false, "inject the deterministic fault schedule (link flap, dup/reorder/corrupt, resolver crashes, clock skew)")
		invar      = flag.Bool("invariants", true, "check simulation invariants on every delivery and cache event")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	header := "range_bin,open,closed,model_windows,model_freebsd,model_linux,model_full"

	cfg := doors.SurveyConfig{
		Population:        ditl.Params{Seed: *seed, ASes: *ases},
		Scanner:           scanner.Config{Seed: *seed + 2, Rate: 20000},
		Shards:            *shards,
		DisableInvariants: !*invar,
	}
	if *chaosOn {
		cfg.Chaos = chaos.Default(uint64(*seed) + 3)
	}
	s, err := doors.RunSurvey(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	if s.Invariants != nil {
		fmt.Printf("invariants: %d deliveries checked, %d violations\n",
			s.Invariants.DeliveriesChecked, s.Invariants.ViolationCount)
	}
	p := s.Report.Ports
	if err := writeCSV(*out, "figure2_upper.csv", header, histRows(p.HistFullOpen, p.HistFullClosed)); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	if err := writeCSV(*out, "figure2_lower.csv", header, histRows(p.HistZoomOpen, p.HistZoomClosed)); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	// Figure 3b bar composition: p0f-identified subsets per range bin.
	if err := writeCSV(*out, "figure3b_p0f.csv", "range_bin,p0f_windows,p0f_linux",
		p0fRows(p.HistFullP0fWin, p.HistFullP0fLin)); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	// Figure 3b is the same data with the model overlay emphasized; the
	// p0f composition comes from Table 4 and is exported alongside.
	var t4 []string
	for _, row := range p.Table4 {
		t4 = append(t4, fmt.Sprintf("%q,%d,%d,%d,%d,%d",
			row.Band.String(), row.Total, row.Open, row.Closed, row.P0fWindows, row.P0fLinux))
	}
	if err := writeCSV(*out, "table4.csv", "band,total,open,closed,p0f_windows,p0f_linux", t4); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	series, err := labexp.RunFigure3a(*labQueries, *seed+700)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	for _, sr := range series {
		name := fmt.Sprintf("figure3a_%s.csv", strings.ReplaceAll(strings.ToLower(sr.Label), " ", "_"))
		if err := writeCSV(*out, name, header, histRows(nil, sr.HistFull)); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %s/figure2_upper.csv, figure2_lower.csv, table4.csv, and %d figure3a series\n",
		*out, len(series))
}
