// Command dsavtest is the per-network testing tool the paper's §6
// proposes offering to the public: it probes a single AS with the full
// spoofed-source battery and reports which categories penetrated the
// border — i.e., whether the network deploys DSAV and bogon filtering,
// and which of its resolvers are exposed.
//
// Usage:
//
//	dsavtest [-ases N] [-seed N] -asn <asn>
//	dsavtest -list           # print testable ASNs with ground truth
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"

	"repro/internal/ditl"
	"repro/internal/scanner"
	"repro/internal/world"
)

func main() {
	var (
		ases = flag.Int("ases", 200, "synthetic world size")
		seed = flag.Int64("seed", 42, "world seed")
		asn  = flag.Uint("asn", 0, "AS number to test (first AS when 0)")
		list = flag.Bool("list", false, "list testable ASNs with their ground truth")
	)
	flag.Parse()

	pop := ditl.Generate(ditl.Params{Seed: *seed, ASes: *ases})
	if *list {
		for _, as := range pop.ASes {
			fmt.Printf("%v dsav=%v bogon-filter=%v resolvers=%d\n",
				as.ASN, as.DSAV, as.FilterBogons, as.NumResolvers())
		}
		return
	}

	w, err := world.Build(pop, world.Options{Seed: *seed + 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsavtest:", err)
		os.Exit(1)
	}
	sc, err := scanner.New(w.Scanner, w.ScannerAddr4, w.ScannerAddr6, w.Reg, w.Auth,
		scanner.Config{Seed: *seed + 2, Keyword: "dtest", Rate: 10000})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsavtest:", err)
		os.Exit(1)
	}

	var spec *ditl.ASSpec
	for _, as := range pop.ASes {
		if *asn == 0 || uint(as.ASN) == *asn {
			spec = as
			break
		}
	}
	if spec == nil {
		fmt.Fprintf(os.Stderr, "dsavtest: AS%d not in this world (use -list)\n", *asn)
		os.Exit(1)
	}
	fmt.Printf("Testing %v: %d candidate resolvers, %d announced prefixes\n",
		spec.ASN, spec.NumResolvers(), len(spec.Prefixes()))

	var candidates []netip.Addr
	for k := 0; k < spec.NumResolvers(); k++ {
		rs := spec.Resolver(k)
		if rs.HasV4() {
			candidates = append(candidates, rs.Addr4)
		}
		if rs.HasV6() {
			candidates = append(candidates, rs.Addr6)
		}
	}
	sc.Admit(candidates)
	probes, _ := sc.ScheduleAll()
	w.Net.Run()

	scannerAddrs := []netip.Addr{w.ScannerAddr4, w.ScannerAddr6}
	penetrated := map[scanner.SourceCategory]int{}
	reached := map[netip.Addr]bool{}
	open := map[netip.Addr]bool{}
	for _, h := range sc.Hits {
		if h.ASN != spec.ASN || h.Kind != scanner.ProbeMain {
			continue
		}
		cat := scanner.Categorize(h.Src, h.Dst, scannerAddrs)
		if cat == scanner.CatNotSpoofed {
			open[h.Dst] = true
			continue
		}
		penetrated[cat]++
		reached[h.Dst] = true
	}

	fmt.Printf("Sent %d probes.\n\n", probes)
	fmt.Println("Spoofed-source categories that penetrated the border:")
	for _, cat := range []scanner.SourceCategory{scanner.CatOtherPrefix, scanner.CatSamePrefix,
		scanner.CatPrivate, scanner.CatDstAsSrc, scanner.CatLoopback} {
		status := "blocked or unanswered"
		if penetrated[cat] > 0 {
			status = fmt.Sprintf("PENETRATED (%d hits)", penetrated[cat])
		}
		fmt.Printf("  %-13s %s\n", cat, status)
	}

	fmt.Println()
	internalSpoof := penetrated[scanner.CatOtherPrefix] + penetrated[scanner.CatSamePrefix] +
		penetrated[scanner.CatDstAsSrc]
	switch {
	case internalSpoof > 0:
		fmt.Println("VERDICT: this network LACKS DSAV — packets claiming internal sources")
		fmt.Println("         cross its border. Configure border routers to drop inbound")
		fmt.Println("         packets bearing internal source addresses.")
	case spec.NumResolvers() == 0:
		fmt.Println("VERDICT: no resolvers to test.")
	default:
		fmt.Println("VERDICT: no internal-source spoofed query penetrated; the network")
		fmt.Println("         deploys DSAV (or no resolver accepted our sources).")
	}
	if penetrated[scanner.CatPrivate] > 0 || penetrated[scanner.CatLoopback] > 0 {
		fmt.Println("NOTE:    special-purpose (private/loopback) sources also penetrated —")
		fmt.Println("         the border performs no bogon filtering.")
	}
	fmt.Printf("\nGround truth for this simulated AS: DSAV=%v, bogon filtering=%v\n",
		spec.DSAV, spec.FilterBogons)
	fmt.Printf("Resolvers reached: %d (%d also answer arbitrary clients: open)\n",
		len(reached), len(open))
}
