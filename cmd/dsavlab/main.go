// Command dsavlab runs the paper's controlled lab experiments: the
// software port-pool survey (Table 5), the OS spoof-acceptance matrix
// (Table 6), and the sample-range distributions of Figure 3a.
//
// Usage:
//
//	dsavlab [-queries N] [-seed N] [-figures]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/labexp"
	"repro/internal/report"
)

func main() {
	var (
		queries = flag.Int("queries", 10000, "queries per software configuration (the paper used 10,000)")
		seed    = flag.Int64("seed", 1, "experiment seed")
		figures = flag.Bool("figures", true, "print Figure 3a histograms")
	)
	flag.Parse()

	rows5, err := labexp.RunTable5(*queries, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsavlab:", err)
		os.Exit(1)
	}
	fmt.Println(report.Table5(rows5))

	rows6, err := labexp.RunSpoofMatrix(*seed + 100)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsavlab:", err)
		os.Exit(1)
	}
	fmt.Println(report.Table6(rows6))

	if *figures {
		series, err := labexp.RunFigure3a(*queries, *seed+200)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsavlab:", err)
			os.Exit(1)
		}
		for _, s := range series {
			fmt.Println(report.Histogram(
				fmt.Sprintf("Figure 3a: %s (pool %d), %d samples of 10",
					s.Label, s.PoolSize, len(s.Ranges)),
				nil, s.HistFull, report.DefaultOverlays()))
		}
	}
}
