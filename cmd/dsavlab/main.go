// Command dsavlab runs the paper's controlled lab experiments: the
// software port-pool survey (Table 5), the OS spoof-acceptance matrix
// (Table 6), and the sample-range distributions of Figure 3a. With
// -savablation it instead runs a campaign ablation: the full survey
// versus the inbound-SAV-only scan over one shared population,
// comparing headline reachability against probe cost.
//
// Usage:
//
//	dsavlab [-queries N] [-seed N] [-figures]
//	dsavlab -savablation [-ases N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	doors "repro"
	"repro/internal/campaign"
	"repro/internal/ditl"
	"repro/internal/labexp"
	"repro/internal/report"
	"repro/internal/scanner"
	"repro/internal/world"
)

func main() {
	var (
		queries  = flag.Int("queries", 10000, "queries per software configuration (the paper used 10,000)")
		seed     = flag.Int64("seed", 1, "experiment seed")
		figures  = flag.Bool("figures", true, "print Figure 3a histograms")
		ablation = flag.Bool("savablation", false, "run the survey vs inbound-SAV campaign ablation instead of the lab experiments")
		ases     = flag.Int("ases", 200, "target ASes in the ablation population")
	)
	flag.Parse()

	if *ablation {
		if err := runSAVAblation(*ases, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "dsavlab:", err)
			os.Exit(1)
		}
		return
	}

	rows5, err := labexp.RunTable5(*queries, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsavlab:", err)
		os.Exit(1)
	}
	fmt.Println(report.Table5(rows5))

	rows6, err := labexp.RunSpoofMatrix(*seed + 100)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsavlab:", err)
		os.Exit(1)
	}
	fmt.Println(report.Table6(rows6))

	if *figures {
		series, err := labexp.RunFigure3a(*queries, *seed+200)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsavlab:", err)
			os.Exit(1)
		}
		for _, s := range series {
			fmt.Println(report.Histogram(
				fmt.Sprintf("Figure 3a: %s (pool %d), %d samples of 10",
					s.Label, s.PoolSize, len(s.Ranges)),
				nil, s.HistFull, report.DefaultOverlays()))
		}
	}
}

// runSAVAblation runs the full survey campaign and the inbound-SAV-only
// campaign over one shared population, so the comparison isolates the
// phase set: same targets, same world seeds, ~100× fewer probes on the
// SAV-only side.
func runSAVAblation(ases int, seed int64) error {
	pop := ditl.Generate(ditl.Params{Seed: seed, ASes: ases})
	base := doors.SurveyConfig{
		World:   world.Options{Seed: seed + 1},
		Scanner: scanner.Config{Seed: seed + 2, Rate: 20000},
	}

	fmt.Printf("Campaign ablation over %d ASes (seed %d):\n\n", ases, seed)
	for _, name := range []string{"survey", "inbound-sav"} {
		c, err := campaign.ByName(name)
		if err != nil {
			return err
		}
		cfg := base
		cfg.Campaign = c
		s, err := doors.RunSurveyOn(pop, cfg)
		if err != nil {
			return err
		}
		r := s.Report
		fmt.Printf("%-12s %8d probes  %7d hits  v4 addrs %5.2f%% ASes %5.2f%%  v6 addrs %5.2f%% ASes %5.2f%%\n",
			c.Name, s.Probes, len(s.Scanner.Hits),
			100*r.V4.AddrFraction(), 100*r.V4.ASFraction(),
			100*r.V6.AddrFraction(), 100*r.V6.ASFraction())
	}
	fmt.Println("\nThe inbound-SAV scan answers the headline DSAV question at a fraction")
	fmt.Println("of the probe volume; the survey campaign adds the §5 characterization.")
	return nil
}
