// Command ditlgen generates a synthetic DITL population and prints its
// composition: the ground truth the survey pipeline is measured against.
//
// Usage:
//
//	ditlgen [-ases N] [-seed N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ditl"
)

func main() {
	var (
		ases     = flag.Int("ases", 800, "number of target ASes")
		seed     = flag.Int64("seed", 42, "generation seed")
		verbose  = flag.Bool("v", false, "per-AS detail")
		export   = flag.String("export", "", "write the population as JSON to this file")
		importIn = flag.String("import", "", "load a population from JSON instead of generating")
	)
	flag.Parse()

	var pop *ditl.Population
	if *importIn != "" {
		f, err := os.Open(*importIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ditlgen:", err)
			os.Exit(1)
		}
		pop, err = ditl.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ditlgen:", err)
			os.Exit(1)
		}
		if err := pop.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "ditlgen: invalid population:", err)
			os.Exit(1)
		}
	} else {
		pop = ditl.Generate(ditl.Params{Seed: *seed, ASes: *ases})
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ditlgen:", err)
			os.Exit(1)
		}
		if err := pop.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "ditlgen:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *export)
	}
	s := pop.Summarize()
	fmt.Printf("ASes:            %d (%d lacking DSAV, %d with IPv6)\n", s.ASes, s.NoDSAV, s.V6ASes)
	fmt.Printf("Targets:         %d IPv4 + %d IPv6 (%d live resolvers, %d dead)\n",
		s.TargetsV4, s.TargetsV6, s.LiveResolvers, s.DeadTargets)
	fmt.Printf("Resolvers:       %d forwarders, %d open, %d fixed-port\n",
		s.Forwarders, s.OpenResolvers, s.ZeroPort)

	bands := map[ditl.Band]int{}
	scopes := map[ditl.ACLScope]int{}
	for _, as := range pop.ASes {
		for k := 0; k < as.NumResolvers(); k++ {
			r := as.Resolver(k)
			if !r.Forward {
				bands[r.Band]++
			}
			scopes[r.Scope]++
		}
	}
	fmt.Println("Direct-resolver port bands:")
	for _, b := range []ditl.Band{ditl.BandZero, ditl.BandLow, ditl.BandMidLow, ditl.BandWindows,
		ditl.BandMidGap, ditl.BandFreeBSD, ditl.BandLinux, ditl.BandFull} {
		fmt.Printf("  %-8s %6d\n", b, bands[b])
	}
	fmt.Println("ACL scopes:")
	for sc := ditl.ScopeOpen; sc <= ditl.ScopeStrict; sc++ {
		fmt.Printf("  %-13s %6d\n", sc, scopes[sc])
	}

	if *verbose {
		for _, as := range pop.ASes {
			fmt.Printf("%v dsav=%v osav=%v bogon=%v countries=%v prefixes=%v resolvers=%d dead=%d\n",
				as.ASN, as.DSAV, as.OSAV, as.FilterBogons, as.Countries,
				len(as.Prefixes()), as.NumResolvers(), len(as.DeadTargets))
		}
	}
}
