// Command attacksim demonstrates the attacks the paper warns about
// (§5.2.1, §6) end to end on the simulated pipeline:
//
//   - Kaminsky-style cache poisoning against resolvers with different
//     source-port behaviours, with and without DSAV and DNS 0x20;
//   - DNS zone poisoning via spoofed-internal dynamic updates ([29]).
//
// Usage:
//
//	attacksim [-races N] [-forgeries N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/detrand"
	"repro/internal/oskernel"
	"repro/internal/resolver"
)

func main() {
	var (
		races     = flag.Int("races", 64, "Kaminsky rounds per scenario")
		forgeries = flag.Int("forgeries", 4096, "forged responses per round")
		seed      = flag.Int64("seed", 5, "seed")
	)
	flag.Parse()

	run := func(label string, cfg attack.Config) {
		cfg.Races = *races
		cfg.ForgeriesPerRace = *forgeries
		cfg.Seed = *seed
		res, err := attack.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacksim:", err)
			os.Exit(1)
		}
		verdict := "survived"
		if res.Poisoned {
			verdict = fmt.Sprintf("POISONED at race %d", res.SuccessRace)
		}
		fmt.Printf("%-46s %s (%d forgeries, %d induced queries)\n",
			label, verdict, res.Forgeries, res.InducedQueries)
	}

	fmt.Printf("Kaminsky cache poisoning: %d races x %d forgeries\n\n", *races, *forgeries)
	run("fixed port 53 (the paper's 3,810 resolvers)", attack.Config{
		Ports: &resolver.FixedPort{Port: 53}, PortGuessLo: 53, PortGuessHi: 54,
	})
	run("fixed port + DSAV at the border", attack.Config{
		Ports: &resolver.FixedPort{Port: 53}, PortGuessLo: 53, PortGuessHi: 54,
		VictimDSAV: true,
	})
	run("fixed port + DNS 0x20", attack.Config{
		Ports: &resolver.FixedPort{Port: 53}, PortGuessLo: 53, PortGuessHi: 54,
		Victim0x20: true,
	})
	run("small pool (40 ports, §5.2.3)", attack.Config{
		Ports:       resolver.NewUniform(oskernel.PortPool{Lo: 30000, Hi: 30040}, detrand.Rand(uint64(*seed))),
		PortGuessLo: 30000, PortGuessHi: 30040,
	})
	run("Linux default pool (28,232 ports)", attack.Config{
		Ports:       resolver.NewUniform(oskernel.PoolLinux, detrand.Rand(uint64(*seed))),
		PortGuessLo: oskernel.PoolLinux.Lo, PortGuessHi: oskernel.PoolLinux.Hi,
	})

	fmt.Println()
	fmt.Println("DNS reflection/amplification (§1-§2; stopped by OSAV at the ORIGIN):")
	for _, osav := range []bool{false, true} {
		res, err := attack.RunReflection(attack.ReflectionConfig{Queries: 40, AttackerOSAV: osav, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacksim:", err)
			os.Exit(1)
		}
		fmt.Printf("  attacker-side OSAV=%v: %d responses, %d bytes at the victim (%.1fx amplification)\n",
			osav, res.VictimPackets, res.VictimBytes, res.Amplification())
	}

	fmt.Println()
	fmt.Println("DNS zone poisoning via spoofed-internal dynamic update ([29]):")
	for _, dsav := range []bool{false, true} {
		res, err := attack.RunZonePoison(attack.ZonePoisonConfig{Seed: *seed, VictimDSAV: dsav})
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacksim:", err)
			os.Exit(1)
		}
		verdict := "record intact"
		if res.Poisoned {
			verdict = fmt.Sprintf("www rewritten to %v", res.FinalAddr)
		}
		fmt.Printf("  DSAV=%v: %s\n", dsav, verdict)
	}
}
