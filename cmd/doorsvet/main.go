// Command doorsvet runs the determinism lint suite (internal/lint):
// detrandonly, saltbands, sortedemit and wallclock.
//
// It speaks the go vet vettool protocol, which is how `make lint`
// invokes it:
//
//	go build -o bin/doorsvet ./cmd/doorsvet
//	go vet -vettool=$(pwd)/bin/doorsvet ./...
//
// Given package patterns instead of a vet config file, it loads and
// checks them standalone, which is convenient during development:
//
//	doorsvet ./...
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/loader"
	"repro/internal/lint/unitchecker"
)

func main() {
	// Package patterns (no flags, no *.cfg) select standalone mode;
	// everything else follows the vettool protocol.
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") && !strings.HasSuffix(os.Args[1], ".cfg") {
		diags, err := loader.Run(".", os.Args[1:], lint.Suite())
		if err != nil {
			fmt.Fprintf(os.Stderr, "doorsvet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Position, d.Message, d.Analyzer)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}
	unitchecker.Main(lint.Suite()...)
}
