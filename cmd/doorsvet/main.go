// Command doorsvet runs the determinism, hot-path and concurrency
// lint suite (internal/lint): detrandonly, saltbands, sortedemit,
// wallclock, frozenshare, shardcapture, hotalloc, retain, lockguard
// and golifetime.
//
// It speaks the go vet vettool protocol, which is how `make lint`
// invokes it:
//
//	go build -o bin/doorsvet ./cmd/doorsvet
//	go vet -vettool=$(pwd)/bin/doorsvet ./...
//
// Given package patterns instead of a vet config file, it loads and
// checks them standalone, which is convenient during development.
// Standalone runs analyze independent packages of the dependency
// graph concurrently (bounded by GOMAXPROCS; -parallel N overrides
// the pool size, -parallel 1 forces the sequential walk) and memoize
// per-package results under bin/.doorsvet-cache, keyed by tool
// identity + source content + dependency keys, so repeat runs only
// re-analyze what changed; pass -nocache to force a full analysis:
//
//	doorsvet ./...
//	doorsvet -nocache ./...
//	doorsvet -parallel 1 ./...
//
// The -pragmas mode audits the suppression surface instead of
// linting: it lists every //lint:allow pragma in the tree (file:line,
// check, reason), then replays the full analysis with usage recording
// to prove each pragma still suppresses a finding. It exits 2 if any
// pragma is missing its reason, names an unknown check, or is stale —
// suppressing nothing, so it should be deleted:
//
//	doorsvet -pragmas [dir]
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/loader"
	"repro/internal/lint/unitchecker"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-pragmas" {
		root := "."
		if len(args) > 1 {
			root = args[1]
		}
		os.Exit(auditPragmas(root))
	}
	nocache := false
	parallel := 0
	for len(args) > 0 {
		if args[0] == "-nocache" {
			nocache = true
			args = args[1:]
			continue
		}
		if args[0] == "-parallel" && len(args) > 1 {
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "doorsvet: -parallel wants a positive integer, got %q\n", args[1])
				os.Exit(2)
			}
			parallel = n
			args = args[2:]
			continue
		}
		break
	}
	// Package patterns (no flags, no *.cfg) select standalone mode;
	// everything else follows the vettool protocol.
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") && !strings.HasSuffix(args[0], ".cfg") {
		opts := loader.Options{Parallel: parallel}
		if !nocache {
			opts.CacheDir = filepath.Join("bin", ".doorsvet-cache")
		}
		diags, stats, err := loader.RunWith(".", args, lint.Suite(), opts)
		if err == nil && !nocache && stats.Hits+stats.Misses > 0 {
			fmt.Fprintf(os.Stderr, "doorsvet: cache: %d hits, %d misses\n", stats.Hits, stats.Misses)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "doorsvet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Position, d.Message, d.Analyzer)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}
	unitchecker.Main(lint.Suite()...)
}

// auditPragmas prints the suppression audit and returns the exit
// code: 0 when every pragma is well-formed and live, 2 when one lacks
// a reason, names a check the suite does not have, or is stale. The
// staleness proof is a full uncached analyzer run with pragma-usage
// recording switched on: any pragma the run never consulted to
// suppress a finding no longer earns its place in the tree.
func auditPragmas(root string) int {
	pragmas, err := lint.ListPragmas(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doorsvet: %v\n", err)
		return 2
	}
	bad := 0
	for _, p := range pragmas {
		fmt.Println(p)
		if p.Reason == "" {
			fmt.Fprintf(os.Stderr, "doorsvet: %s:%d: //lint:allow %s has no reason (write //lint:allow %s -- <why>)\n",
				p.File, p.Line, p.Check, p.Check)
			bad++
		}
		if !p.Known {
			fmt.Fprintf(os.Stderr, "doorsvet: %s:%d: //lint:allow %s names an unknown check\n",
				p.File, p.Line, p.Check)
			bad++
		}
	}

	// Stale detection: re-run the suite (uncached — cache hits skip
	// analysis and would record nothing) recording which pragmas fire.
	lint.RecordPragmaUsage()
	if _, err := loader.Run(root, []string{"./..."}, lint.Suite()); err != nil {
		fmt.Fprintf(os.Stderr, "doorsvet: pragma usage analysis: %v\n", err)
		return 2
	}
	for _, p := range pragmas {
		if p.Reason == "" || !p.Known {
			continue // already flagged above
		}
		abs, err := filepath.Abs(filepath.Join(root, filepath.FromSlash(p.File)))
		if err != nil {
			abs = filepath.Join(root, filepath.FromSlash(p.File))
		}
		if !lint.PragmaUsed(abs, p.Line) {
			fmt.Fprintf(os.Stderr, "doorsvet: %s:%d: //lint:allow %s is stale: it suppresses no finding; delete it\n",
				p.File, p.Line, p.Check)
			bad++
		}
	}
	if bad > 0 {
		return 2
	}
	return 0
}
