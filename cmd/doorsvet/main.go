// Command doorsvet runs the determinism lint suite (internal/lint):
// detrandonly, saltbands, sortedemit, wallclock, frozenshare and
// shardcapture.
//
// It speaks the go vet vettool protocol, which is how `make lint`
// invokes it:
//
//	go build -o bin/doorsvet ./cmd/doorsvet
//	go vet -vettool=$(pwd)/bin/doorsvet ./...
//
// Given package patterns instead of a vet config file, it loads and
// checks them standalone, which is convenient during development:
//
//	doorsvet ./...
//
// The -pragmas mode audits the suppression surface instead of
// linting: it lists every //lint:allow pragma in the tree
// (file:line, check, reason) and exits 2 if any pragma is missing its
// reason or names an unknown check:
//
//	doorsvet -pragmas [dir]
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/loader"
	"repro/internal/lint/unitchecker"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-pragmas" {
		root := "."
		if len(os.Args) > 2 {
			root = os.Args[2]
		}
		os.Exit(listPragmas(root))
	}
	// Package patterns (no flags, no *.cfg) select standalone mode;
	// everything else follows the vettool protocol.
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") && !strings.HasSuffix(os.Args[1], ".cfg") {
		diags, err := loader.Run(".", os.Args[1:], lint.Suite())
		if err != nil {
			fmt.Fprintf(os.Stderr, "doorsvet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Position, d.Message, d.Analyzer)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}
	unitchecker.Main(lint.Suite()...)
}

// listPragmas prints the suppression audit and returns the exit code:
// 0 when every pragma is well-formed, 2 when one lacks a reason or
// names a check the suite does not have.
func listPragmas(root string) int {
	pragmas, err := lint.ListPragmas(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doorsvet: %v\n", err)
		return 2
	}
	bad := 0
	for _, p := range pragmas {
		fmt.Println(p)
		if p.Reason == "" {
			fmt.Fprintf(os.Stderr, "doorsvet: %s:%d: //lint:allow %s has no reason (write //lint:allow %s -- <why>)\n",
				p.File, p.Line, p.Check, p.Check)
			bad++
		}
		if !p.Known {
			fmt.Fprintf(os.Stderr, "doorsvet: %s:%d: //lint:allow %s names an unknown check\n",
				p.File, p.Line, p.Check)
			bad++
		}
	}
	if bad > 0 {
		return 2
	}
	return 0
}
