// Command mkreport runs the full reproduction — survey, lab
// experiments, and ablations — and emits a markdown report comparing
// the paper's published values with the measured ones (the content of
// EXPERIMENTS.md).
//
// Usage:
//
//	mkreport [-ases N] [-seed N] [-rate QPS] [-labqueries N] [-ablations]
package main

import (
	"flag"
	"fmt"
	"os"

	doors "repro"
	"repro/internal/analysis"
	"repro/internal/ditl"
	"repro/internal/labexp"
	"repro/internal/report"
	"repro/internal/scanner"
	"repro/internal/stats"
	"repro/internal/world"
)

func pct(n, d int) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(d))
}

func row(id, paper, measured string) {
	fmt.Printf("| %s | %s | %s |\n", id, paper, measured)
}

func catRow(rows []analysis.CategoryRow, c scanner.SourceCategory) analysis.CategoryRow {
	for _, r := range rows {
		if r.Category == c {
			return r
		}
	}
	return analysis.CategoryRow{}
}

func main() {
	var (
		ases       = flag.Int("ases", 800, "target ASes")
		seed       = flag.Int64("seed", 42, "seed")
		rate       = flag.Float64("rate", 20000, "probe rate (virtual qps)")
		labQueries = flag.Int("labqueries", 10000, "lab queries per configuration")
		ablations  = flag.Bool("ablations", true, "run the DSAV-on and wildcard ablation surveys")
	)
	flag.Parse()

	cfg := doors.SurveyConfig{
		Population: ditl.Params{Seed: *seed, ASes: *ases},
		World:      world.Options{Seed: *seed + 1},
		Scanner:    scanner.Config{Seed: *seed + 2, Rate: *rate},
	}
	s, err := doors.RunSurvey(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkreport:", err)
		os.Exit(1)
	}
	r := s.Report

	fmt.Println("# EXPERIMENTS — paper vs. measured")
	fmt.Println()
	fmt.Printf("Survey world: %d ASes, %d IPv4 + %d IPv6 targets, seed %d; %d probes over %v of virtual time.\n",
		*ases, r.V4.Targets, r.V6.Targets, *seed, s.Probes, s.Duration)
	fmt.Println()
	fmt.Println("Absolute counts scale with world size; the reproduction targets the paper's")
	fmt.Println("*shapes* (who wins, by what factor, where crossovers fall). Regenerate with")
	fmt.Println("`go run ./cmd/mkreport` (survey/tables) and `go run ./cmd/dsavlab` (lab).")
	fmt.Println()
	fmt.Println("## Headline (§4)")
	fmt.Println()
	fmt.Println("| Result | Paper | Measured |")
	fmt.Println("|---|---|---|")
	row("IPv4 targets reachable", "519,447 of 11,204,889 (4.6%)",
		fmt.Sprintf("%d of %d (%s)", r.V4.ReachableAddrs, r.V4.Targets, pct(r.V4.ReachableAddrs, r.V4.Targets)))
	row("IPv6 targets reachable", "49,008 of 784,777 (6.2%)",
		fmt.Sprintf("%d of %d (%s)", r.V6.ReachableAddrs, r.V6.Targets, pct(r.V6.ReachableAddrs, r.V6.Targets)))
	row("IPv4 ASes reachable", "26,206 of 53,922 (49%)",
		fmt.Sprintf("%d of %d (%s)", r.V4.ReachableASes, r.V4.ASes, pct(r.V4.ReachableASes, r.V4.ASes)))
	row("IPv6 ASes reachable", "3,952 of 7,904 (50%)",
		fmt.Sprintf("%d of %d (%s)", r.V6.ReachableASes, r.V6.ASes, pct(r.V6.ReachableASes, r.V6.ASes)))
	row("Median sources reaching a v4/v6 target (§4.1)", "3 / 2",
		fmt.Sprintf("%.0f / %.0f", r.MedianSourcesV4, r.MedianSourcesV6))
	row("Targets reached by >50 sources (§4.1)", "16% v4 / 9% v6",
		fmt.Sprintf("%s / %s", pct(r.Over50SourcesV4, r.V4.ReachableAddrs),
			pct(r.Over50SourcesV6, r.V6.ReachableAddrs)))
	row("Targets reached by at most 2 sources (§4.1)", "≈50%",
		fmt.Sprintf("%s v4 / %s v6", pct(r.OneOrTwoSourcesV4, r.V4.ReachableAddrs),
			pct(r.OneOrTwoSourcesV6, r.V6.ReachableAddrs)))

	fmt.Println()
	fmt.Println("## Table 3 — spoofed-source categories (§4.1, category-inclusive, % of reachable)")
	fmt.Println()
	fmt.Println("| Category | Paper v4 addrs | Measured v4 addrs | Paper v6 addrs | Measured v6 addrs |")
	fmt.Println("|---|---|---|---|---|")
	paperV4 := map[scanner.SourceCategory]string{
		scanner.CatOtherPrefix: "78%", scanner.CatSamePrefix: "63%",
		scanner.CatPrivate: "3.4%", scanner.CatDstAsSrc: "17%", scanner.CatLoopback: "0.0%",
	}
	paperV6 := map[scanner.SourceCategory]string{
		scanner.CatOtherPrefix: "45%", scanner.CatSamePrefix: "84%",
		scanner.CatPrivate: "4.3%", scanner.CatDstAsSrc: "70%", scanner.CatLoopback: "0.2%",
	}
	for _, c := range []scanner.SourceCategory{scanner.CatOtherPrefix, scanner.CatSamePrefix,
		scanner.CatPrivate, scanner.CatDstAsSrc, scanner.CatLoopback} {
		v4, v6 := catRow(r.Table3.V4, c), catRow(r.Table3.V6, c)
		row(c.String(),
			paperV4[c], pct(v4.InclusiveAddrs, r.V4.ReachableAddrs)+
				" | "+paperV6[c]+" | "+pct(v6.InclusiveAddrs, r.V6.ReachableAddrs))
	}
	fmt.Println()
	fmt.Printf("Same-prefix-only baseline (§2, Korczyński et al. comparison): limiting to the\n")
	sp4 := catRow(r.Table3.V4, scanner.CatSamePrefix)
	fmt.Printf("same-prefix source would miss %s of reachable IPv4 addresses (paper: 37%%) and\n",
		pct(r.V4.ReachableAddrs-sp4.InclusiveAddrs, r.V4.ReachableAddrs))
	fmt.Printf("%s of reachable IPv4 ASNs (paper: 9%%).\n",
		pct(r.V4.ReachableASes-sp4.InclusiveASNs, r.V4.ReachableASes))

	fmt.Println()
	fmt.Println("## Open vs closed (§5.1)")
	fmt.Println()
	fmt.Println("| Result | Paper | Measured |")
	fmt.Println("|---|---|---|")
	oc := r.OpenClosed
	row("Closed / open resolvers", "340,247 (60%) / 228,208 (40%)",
		fmt.Sprintf("%d (%s) / %d (%s)", oc.Closed, pct(oc.Closed, oc.Open+oc.Closed),
			oc.Open, pct(oc.Open, oc.Open+oc.Closed)))
	row("No-DSAV ASes hosting ≥1 closed resolver", "88%", pct(oc.ASesWithClosed, oc.ReachableASes))

	fmt.Println()
	fmt.Println("## Source ports (§5.2, Table 4, Figure 2)")
	fmt.Println()
	fmt.Println("| Result | Paper | Measured |")
	fmt.Println("|---|---|---|")
	p := r.Ports
	row("Resolvers with zero source-port range", "3,810",
		fmt.Sprintf("%d of %d direct samples (%s)", len(p.ZeroRange), len(p.Samples), pct(len(p.ZeroRange), len(p.Samples))))
	row("Zero-range resolvers that are closed", "2,244 (59%)",
		fmt.Sprintf("%d (%s)", p.ZeroRangeClosed, pct(p.ZeroRangeClosed, len(p.ZeroRange))))
	row("Zero-range resolvers using port 53", "1,308 (34%)",
		fmt.Sprintf("%d (%s)", p.ZeroRangePort53, pct(p.ZeroRangePort53, len(p.ZeroRange))))
	row("ASes with a zero-range resolver (share of no-DSAV ASes)", "1,802 (6%)",
		fmt.Sprintf("%d (%s)", p.ZeroRangeASNs, pct(p.ZeroRangeASNs, oc.ReachableASes)))
	row("Zero-range ASes with ≥1 closed vulnerable resolver", "1,708 (95%)",
		fmt.Sprintf("%d (%s)", p.ZeroASNsWithClosed, pct(p.ZeroASNsWithClosed, p.ZeroRangeASNs)))
	row("Range 1-200: strictly increasing / wrapped", "159 of 244 (65%) / 130",
		fmt.Sprintf("%d of %d / %d", p.LowRangeIncreasing, len(p.LowRange), p.LowRangeWrapped))
	row("Range 1-200: ≤7 unique ports of 10", "34 (14%)",
		fmt.Sprintf("%d (%s)", p.LowRangeFewUnique, pct(p.LowRangeFewUnique, len(p.LowRange))))
	fmt.Printf("| P(≤7 unique from a 200-port pool) model (§5.2.3) | 0.066%% | %.3f%% |\n",
		100*stats.ProbUniqueAtMost(7, 10, 200))
	fmt.Println()
	fmt.Println("The zero-range and 1-200 rows are small-sample at default world size; their")
	fmt.Println("proportions (59% closed, 34% port 53, 65% sequential) converge in larger runs")
	fmt.Println("(`-ases 4000`).")

	fmt.Println()
	fmt.Println("### Table 4 bands (measured)")
	fmt.Println()
	fmt.Println("```")
	fmt.Print(report.Table4(r))
	fmt.Println("```")
	fmt.Println()
	fmt.Println("Paper shape checks: Windows-band resolvers are overwhelmingly open (paper 89%),")
	for _, band := range p.Table4 {
		switch band.Band.Label {
		case "Windows DNS":
			fmt.Printf("measured %s open, %s p0f-Windows (paper 89%%).\n",
				pct(band.Open, band.Total), pct(band.P0fWindows, band.Total))
		case "Linux":
			fmt.Printf("Linux-band resolvers are overwhelmingly closed: measured %s closed (paper 97%%).\n",
				pct(band.Closed, band.Total))
		}
	}

	fmt.Println()
	fmt.Println("### Figure 2 (lower): source-port ranges 0-3000 ('#' closed, 'o' open)")
	fmt.Println()
	fmt.Println("```")
	fmt.Print(report.Histogram("", r.Ports.HistZoomOpen, r.Ports.HistZoomClosed, nil))
	fmt.Println("```")

	fmt.Println()
	fmt.Println("## Forwarding (§5.4)")
	fmt.Println()
	fmt.Println("| Result | Paper | Measured |")
	fmt.Println("|---|---|---|")
	f := r.Forwarding
	row("IPv4 direct / forwarded", "53% / 47%",
		fmt.Sprintf("%s / %s", pct(f.V4Direct, f.V4Resolved), pct(f.V4Forwarded, f.V4Resolved)))
	row("IPv6 direct / forwarded", "85% / 16%",
		fmt.Sprintf("%s / %s", pct(f.V6Direct, f.V6Resolved), pct(f.V6Forwarded, f.V6Resolved)))
	row("Targets in both categories (v4/v6)", "3,178 / 219",
		fmt.Sprintf("%d / %d", f.V4Both, f.V6Both))

	fmt.Println()
	fmt.Println("## Methodology accounting (§3.6)")
	fmt.Println()
	fmt.Println("| Result | Paper | Measured |")
	fmt.Println("|---|---|---|")
	m := r.Middlebox
	row("Reachable ASes with direct-from-AS queries (§3.6.1)", "86% (v4)",
		pct(m.DirectFromAS, m.ReachableASes))
	row("Explained via public DNS services", "most of the rest",
		pct(m.ViaPublicDNS, m.ReachableASes))
	row("Unexplained ASes", "≈2%", pct(m.Unexplained, m.ReachableASes))
	l := r.Lifetime
	row("Addresses only seen past the 10s lifetime threshold (§3.6.3)", "3,444 v4 + 70 v6",
		fmt.Sprintf("%d (%d ASes, %d recovered)", l.OverThresholdAddrs, l.OverThresholdASes, l.RecoveredASes))
	q := r.Qmin
	row("QNAME-minimizing clients never sending the full name (§3.6.4)", "9,898 of 17,981 (55%)",
		fmt.Sprintf("%d of %d (%s)", q.NeverFull, q.ClientAddrs, pct(q.NeverFull, q.ClientAddrs)))
	row("Minimized-query ASNs still detected as lacking DSAV", "2,041 of 2,081 (98%)",
		fmt.Sprintf("%d of %d (%s)", q.DetectedAnyway, q.ASNs, pct(q.DetectedAnyway, q.ASNs)))

	fmt.Println()
	fmt.Println("## Local-system infiltration (§5.5)")
	fmt.Println()
	fmt.Println("| Result | Paper | Measured |")
	fmt.Println("|---|---|---|")
	row("Targets reached destination-as-source", "123,592",
		fmt.Sprintf("%d (%s of reachable)", r.Infiltration.DstAsSrcAddrs,
			pct(r.Infiltration.DstAsSrcAddrs, r.V4.ReachableAddrs+r.V6.ReachableAddrs)))
	row("Targets reached with loopback source", "107",
		fmt.Sprintf("%d", r.Infiltration.LoopbackAddrs))

	// Lab experiments.
	fmt.Println()
	fmt.Println("## Lab experiments (Tables 5-6, Figure 3a)")
	fmt.Println()
	rows5, err := labexp.RunTable5(*labQueries, *seed+500)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkreport:", err)
		os.Exit(1)
	}
	fmt.Println("```")
	fmt.Print(report.Table5(rows5))
	fmt.Println("```")
	fmt.Println()
	rows6, err := labexp.RunSpoofMatrix(*seed + 600)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkreport:", err)
		os.Exit(1)
	}
	fmt.Println("```")
	fmt.Print(report.Table6(rows6))
	fmt.Println("```")
	fmt.Println()
	series, err := labexp.RunFigure3a(*labQueries, *seed+700)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkreport:", err)
		os.Exit(1)
	}
	fmt.Println("Figure 3a vs Beta(9,2) model (medians and chi-square/dof fit):")
	fmt.Println()
	fmt.Println("| Pool | Model median | Measured median | chi2/dof |")
	fmt.Println("|---|---|---|---|")
	for _, sr := range series {
		model := stats.RangeQuantile(0.5, sr.PoolSize, stats.SampleSize)
		fit, _ := stats.ChiSquareRangeFit(sr.Ranges, sr.PoolSize, stats.SampleSize, 10)
		fmt.Printf("| %s (%d) | %.0f | %d | %.2f |\n",
			sr.Label, sr.PoolSize, model, sr.HistFull.Quantile(0.5), fit)
	}

	fmt.Println()
	fmt.Println("## Cutoff derivation (§5.3.2, Table 4 boundaries)")
	fmt.Println()
	fmt.Println("| Boundary | Paper | Derived |")
	fmt.Println("|---|---|---|")
	c1, e1h, e1l := stats.OptimalBoundary(16383, 28232, stats.SampleSize)
	row("FreeBSD/Linux", "16,331 (0.05% / 3.5% misclassified)",
		fmt.Sprintf("%d (%.2f%% / %.1f%%)", c1, 100*e1h, 100*e1l))
	c2, e2h, e2l := stats.OptimalBoundary(28232, 64511, stats.SampleSize)
	row("Linux/full-range", "28,222 (0.35% collective)",
		fmt.Sprintf("%d (%.2f%% collective)", c2, 100*(e2h+e2l)))
	row("Windows DNS band", "941-2,488 (99.9% accuracy)",
		fmt.Sprintf("%.0f-%.0f", stats.RangeQuantile(0.001, 2500, 10)+1, stats.RangeQuantile(0.999, 2500, 10)))

	// Methodology validation against ground truth — the check the real
	// experimenters could never run.
	v := analysis.Validate(r, s.Population)
	fmt.Println()
	fmt.Println("## Methodology validation (vs. simulation ground truth)")
	fmt.Println()
	fmt.Println("| Check | Result |")
	fmt.Println("|---|---|")
	fmt.Printf("| DSAV detection recall | %.1f%% (%d of %d vulnerable ASes found) |\n",
		100*v.DSAVRecall(), v.TruePositiveASes, v.NoDSAVASes)
	fmt.Printf("| DSAV detection precision | %.1f%% (%d false positives, from private/loopback leakage) |\n",
		100*v.DSAVPrecision(), v.FalsePositiveASes)
	fmt.Printf("| Open/closed classification accuracy | %s (%d of %d) |\n",
		pct(v.OpenCorrect, v.OpenChecked), v.OpenCorrect, v.OpenChecked)
	fmt.Printf("| Port-band OS attribution accuracy | %s (%d of %d) |\n",
		pct(v.BandCorrect, v.BandChecked), v.BandCorrect, v.BandChecked)
	fmt.Printf("| p0f label precision | %s (%d of %d) |\n",
		pct(v.P0fCorrect, v.P0fLabeled), v.P0fCorrect, v.P0fLabeled)

	if *ablations {
		fmt.Println()
		fmt.Println("## Ablations")
		fmt.Println()
		pop := s.Population
		prot, err := doors.RunSurveyOn(pop, doors.SurveyConfig{
			World:   world.Options{Seed: *seed + 1, AllDSAV: true},
			Scanner: scanner.Config{Seed: *seed + 2, Rate: *rate},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mkreport:", err)
			os.Exit(1)
		}
		fmt.Println("| Ablation | Baseline | Result |")
		fmt.Println("|---|---|---|")
		row("DSAV everywhere: reachable v4 addrs",
			fmt.Sprintf("%d", r.V4.ReachableAddrs),
			fmt.Sprintf("%d (DSAV blocks all internal-source spoofing; residual is private-source leakage through unfiltered borders)", prot.Report.V4.ReachableAddrs))
		wc, err := doors.RunSurveyOn(pop, doors.SurveyConfig{
			World:   world.Options{Seed: *seed + 1, Wildcard: true},
			Scanner: scanner.Config{Seed: *seed + 2, Rate: *rate},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mkreport:", err)
			os.Exit(1)
		}
		row("Wildcard answers (§3.6.4 fix): QNAME-minimized clients never seen in full",
			fmt.Sprintf("%d of %d", q.NeverFull, q.ClientAddrs),
			fmt.Sprintf("%d of %d", wc.Report.Qmin.NeverFull, wc.Report.Qmin.ClientAddrs))
	}
}
