package doors

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/ditl"
	"repro/internal/scanner"
)

// TestStreamingMatchesRetained pins the streaming engine's core
// guarantee: a survey run under Config.Stream — population synthesized
// on demand by a ditl.View, worlds discarded shard by shard,
// observations reduced incrementally — produces a bit-identical Result
// to the retained engine over the materialized population, at several
// shard counts and parallelism bounds.
func TestStreamingMatchesRetained(t *testing.T) {
	cfg := SurveyConfig{
		Population: ditl.Params{Seed: 7, ASes: 40},
		Scanner:    scanner.Config{Seed: 8, Rate: 10000},
	}
	base, err := RunSurvey(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ shards, maxPar int }{
		{1, 1}, {2, 1}, {2, 2}, {8, 3},
	} {
		scfg := cfg
		scfg.Stream = true
		scfg.Shards = tc.shards
		scfg.MaxParallel = tc.maxPar
		s, err := RunSurvey(scfg)
		if err != nil {
			t.Fatalf("stream shards=%d: %v", tc.shards, err)
		}
		if s.World != nil || s.Worlds != nil {
			t.Fatalf("stream shards=%d retained worlds", tc.shards)
		}
		if !reflect.DeepEqual(s.Scanner.Targets, base.Scanner.Targets) {
			t.Fatalf("stream shards=%d: targets differ", tc.shards)
		}
		if !reflect.DeepEqual(s.Scanner.Hits, base.Scanner.Hits) {
			t.Fatalf("stream shards=%d: hits differ (%d vs %d)",
				tc.shards, len(s.Scanner.Hits), len(base.Scanner.Hits))
		}
		if !reflect.DeepEqual(s.Scanner.Partials, base.Scanner.Partials) {
			t.Fatalf("stream shards=%d: partials differ", tc.shards)
		}
		if s.Scanner.Stats != base.Scanner.Stats {
			t.Fatalf("stream shards=%d: stats differ: %+v vs %+v",
				tc.shards, s.Scanner.Stats, base.Scanner.Stats)
		}
		if !reflect.DeepEqual(s.Report, base.Report) {
			t.Fatalf("stream shards=%d: reports differ", tc.shards)
		}
		if !reflect.DeepEqual(s.PublicDNS, base.PublicDNS) {
			t.Fatalf("stream shards=%d: public DNS lists differ", tc.shards)
		}
		if s.Probes != base.Probes || s.Duration != base.Duration {
			t.Fatalf("stream shards=%d: probes/duration differ: %d/%v vs %d/%v",
				tc.shards, s.Probes, s.Duration, base.Probes, base.Duration)
		}
		if s.Invariants == nil || !s.Invariants.Ok() {
			t.Fatalf("stream shards=%d: invariant report missing or failing", tc.shards)
		}
	}
}

// TestFoldMatchesRetained pins the fold engine's guarantee: a survey
// run under Config.Fold — shard hit runs spilled to disk, the reduce
// streaming their hierarchical merge through the reducers, the target
// stream re-derived from the view — produces the identical Report,
// stats and scalars as the retained engine, at several shard counts,
// with the merged buffers never materialized.
func TestFoldMatchesRetained(t *testing.T) {
	cfg := SurveyConfig{
		Population: ditl.Params{Seed: 7, ASes: 40},
		Scanner:    scanner.Config{Seed: 8, Rate: 10000},
	}
	base, err := RunSurvey(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ shards, maxPar int }{
		{1, 1}, {2, 2}, {8, 3},
	} {
		fcfg := cfg
		fcfg.Fold = true
		fcfg.Shards = tc.shards
		fcfg.MaxParallel = tc.maxPar
		s, err := RunSurvey(fcfg)
		if err != nil {
			t.Fatalf("fold shards=%d: %v", tc.shards, err)
		}
		if s.World != nil || s.Worlds != nil {
			t.Fatalf("fold shards=%d retained worlds", tc.shards)
		}
		if s.Scanner.Targets != nil || s.Scanner.Hits != nil || s.Scanner.Partials != nil {
			t.Fatalf("fold shards=%d materialized merged buffers", tc.shards)
		}
		if s.Scanner.Stats != base.Scanner.Stats {
			t.Fatalf("fold shards=%d: stats differ: %+v vs %+v",
				tc.shards, s.Scanner.Stats, base.Scanner.Stats)
		}
		if !reflect.DeepEqual(s.Report, base.Report) {
			t.Fatalf("fold shards=%d: reports differ", tc.shards)
		}
		if !reflect.DeepEqual(s.PublicDNS, base.PublicDNS) {
			t.Fatalf("fold shards=%d: public DNS lists differ", tc.shards)
		}
		if s.Probes != base.Probes || s.Duration != base.Duration {
			t.Fatalf("fold shards=%d: probes/duration differ: %d/%v vs %d/%v",
				tc.shards, s.Probes, s.Duration, base.Probes, base.Duration)
		}
		if s.Invariants == nil || !s.Invariants.Ok() {
			t.Fatalf("fold shards=%d: invariant report missing or failing", tc.shards)
		}
	}
}

// TestStreamingChaosAndChurn pins the streaming engine under the
// stressed paths: chaos faults and churn must produce the same merged
// observations as the retained engine at the same shard count (the
// fault schedule is keyed on causal identity and the campaign window,
// both engine-invariant).
func TestStreamingChaosAndChurn(t *testing.T) {
	cfg := SurveyConfig{
		Population:    ditl.Params{Seed: 7, ASes: 40},
		Scanner:       scanner.Config{Seed: 8, Rate: 10000},
		ChurnFraction: 0.1,
		Shards:        3,
	}
	cfg.Chaos = chaos.Default(99)
	base, err := RunSurvey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.ChaosCrashes == 0 {
		t.Fatal("chaos did not bite in the retained baseline")
	}
	scfg := cfg
	scfg.Stream = true
	s, err := RunSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Scanner.Hits, base.Scanner.Hits) {
		t.Fatalf("chaos stream: hits differ (%d vs %d)", len(s.Scanner.Hits), len(base.Scanner.Hits))
	}
	if s.ChaosCrashes != base.ChaosCrashes {
		t.Fatalf("chaos stream: crashes %d vs %d", s.ChaosCrashes, base.ChaosCrashes)
	}
	if !reflect.DeepEqual(s.Report, base.Report) {
		t.Fatal("chaos stream: reports differ")
	}

	fcfg := cfg
	fcfg.Fold = true
	f, err := RunSurvey(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.ChaosCrashes != base.ChaosCrashes {
		t.Fatalf("chaos fold: crashes %d vs %d", f.ChaosCrashes, base.ChaosCrashes)
	}
	if f.Scanner.Stats != base.Scanner.Stats {
		t.Fatalf("chaos fold: stats differ: %+v vs %+v", f.Scanner.Stats, base.Scanner.Stats)
	}
	if !reflect.DeepEqual(f.Report, base.Report) {
		t.Fatal("chaos fold: reports differ")
	}
}
