package doors

// Race-stress cross-validation (make racestress): the lockguard and
// golifetime analyzers make a static claim — the engine's concurrency
// discipline is sound — and these tests make the dynamic half of the
// argument under `go test -race`. TestRaceStressConcurrentCampaigns
// drives two streaming campaigns through one shared campaign.Runner at
// high MaxParallel, so the runner's registry memo, progress counters
// and resolver-stats sinks are all exercised from many goroutines at
// once; any locking hole the analyzers missed is the race detector's
// to find, and any determinism hole shows up as a result mismatch.
// TestRaceStressLintAgreement closes the loop from the other side: the
// concurrency-bearing packages must come back clean from exactly those
// two analyzers, so a race-detector pass here is never read as
// "annotations unnecessary" and a clean lint report is never read as
// "stress test redundant".

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/ditl"
	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
	"repro/internal/scanner"
)

func TestRaceStressConcurrentCampaigns(t *testing.T) {
	cfg := SurveyConfig{
		Population:  ditl.Params{Seed: 7, ASes: 40},
		Scanner:     scanner.Config{Seed: 8, Rate: 10000},
		Stream:      true,
		Shards:      8,
		MaxParallel: 4,
	}
	pop := ditl.NewView(cfg.Population)

	// Sequential baseline on its own Runner.
	base, err := campaign.NewRunner().Run(cfg.Campaign, pop, cfg.engineConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Two campaigns over the same population view race through one
	// shared Runner: both hit the same registry memo entry, both bump
	// the shared progress counters, and each runs 8 shard simulations
	// on up to 4 worker goroutines.
	r := campaign.NewRunner()
	const runs = 2
	results := make([]*Survey, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int, r *campaign.Runner, pop ditl.Pop, cfg SurveyConfig) {
			defer wg.Done()
			results[i], errs[i] = r.Run(cfg.Campaign, pop, cfg.engineConfig())
		}(i, r, pop, cfg)
	}
	wg.Wait()

	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		s := results[i]
		if !reflect.DeepEqual(s.Scanner.Hits, base.Scanner.Hits) {
			t.Errorf("concurrent run %d: hits diverge from sequential baseline (%d vs %d)",
				i, len(s.Scanner.Hits), len(base.Scanner.Hits))
		}
		if !reflect.DeepEqual(s.Report, base.Report) {
			t.Errorf("concurrent run %d: report diverges from sequential baseline", i)
		}
		if s.ResolverStats != base.ResolverStats {
			t.Errorf("concurrent run %d: resolver stats diverge: %+v vs %+v",
				i, s.ResolverStats, base.ResolverStats)
		}
	}
	if base.ResolverStats.ClientQueries == 0 {
		t.Error("baseline resolver stats are empty: the sink never saw the shards")
	}
	active, completed, shardsDone := r.Progress()
	if active != 0 || completed != runs || shardsDone != runs*cfg.Shards {
		t.Errorf("runner progress = (%d active, %d completed, %d shards), want (0, %d, %d)",
			active, completed, shardsDone, runs, runs*cfg.Shards)
	}
}

func TestRaceStressLintAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("full-package analysis in -short mode")
	}
	diags, err := loader.Run(".", []string{
		"./internal/campaign/...",
		"./internal/resolver/...",
		"./internal/world/...",
		"./internal/netsim/...",
		"./internal/lint/...",
	}, []*analysis.Analyzer{lint.LockGuard, lint.GoLifetime})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		t.Fatalf("%d lockguard/golifetime findings: static and dynamic verdicts disagree", len(diags))
	}
}
